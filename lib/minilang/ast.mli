(** Abstract syntax of the mini parallel language.

    The language is deliberately close to the paper's examples: shared
    memory is a flat array of integer locations; each processor runs a
    sequential imperative program over private registers; synchronization
    is performed with [Test&Set]/[Unset] (as in Figures 1b and 2) or with
    generic acquire/release operations (as DRF1 permits).  Computed
    addresses are supported because Figure 2's program en/dequeues region
    addresses and then works on [addr .. addr+n]. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Int of int
  | Reg of string           (** registers read as 0 until first assigned *)
  | Neg of expr
  | Not of expr              (** logical: 0 ↦ 1, non-zero ↦ 0 *)
  | Bin of binop * expr * expr

type instr =
  | Set of string * expr     (** register assignment; purely local *)
  | Load of { reg : string; addr : expr; label : string option }
      (** data read *)
  | Store of { addr : expr; value : expr; label : string option }
      (** data write *)
  | Sync_load of { reg : string; addr : expr; label : string option }
      (** acquire read (hardware-recognized synchronization) *)
  | Sync_store of { addr : expr; value : expr; label : string option }
      (** release write *)
  | Test_and_set of { reg : string; addr : expr; label : string option }
      (** atomically [reg := old; mem := 1]; the read is an acquire, the
          write is a plain sync op (the paper: "the write due to a
          Test&Set is not a release") *)
  | Unset of { addr : expr; label : string option }
      (** [mem := 0]; a release write *)
  | Fetch_and_add of { reg : string; addr : expr; amount : expr; label : string option }
      (** atomically [reg := old; mem := old + amount]; classified like
          [Test&Set] *)
  | Fence of { label : string option }
      (** drains the store buffer; not a memory operation *)
  | If of expr * instr list * instr list
  | While of expr * instr list

type program = {
  name : string;
  n_locs : int;
  init : (int * int) list;        (** initial memory; unlisted locations are 0 *)
  procs : instr list array;
  symbols : (string * int) list;  (** location names, for reports *)
}

type step = Nth of int | Then | Else | Body
    (** One step into a processor body: [Nth i] selects the [i]-th
        instruction of a block, [Then]/[Else]/[Body] descend into the
        corresponding branch of the [If]/[While] just selected. *)

type path = step list
(** Position of an instruction inside a processor body, e.g.
    [[Nth 1; Then; Nth 0]] is rendered ["1.then.0"]. *)

val pp_path : Format.formatter -> path -> unit
val path_to_string : path -> string

val compare_path : path -> path -> int
(** Source order: earlier program text compares smaller.  Siblings
    compare by index, a block prefix precedes its contents, and [Then]
    arms precede [Else] arms of the same [If].  Total on the paths of
    one processor body. *)

val loc_name : program -> int -> string
(** Symbolic name of a location, or its number when anonymous. *)

val validate : program -> (unit, string) Result.t
(** Static checks: at least one processor, positive location count,
    initializations and constant addresses in range, no division or
    modulo by a constant zero.  Errors name the processor and the
    {!path} of the offending instruction. *)

val binop_symbol : binop -> string
(** Concrete-syntax spelling, e.g. [Add] ↦ ["+"]. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> program -> unit
