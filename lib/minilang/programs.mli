(** Stock programs: the paper's figures plus classic litmus tests.

    Location symbols follow the paper where applicable ([x], [y], [s],
    [Q], [QEmpty], [S]). *)

val fig1a : Ast.program
(** Figure 1a's program: P1 writes x then y; P2 reads y then x; no
    synchronization.  Not data-race-free: on weak hardware P2 may observe
    the new y but the old x, violating SC. *)

val fig1b : Ast.program
(** Figure 1b's program: P1 writes x, y and Unsets s; P2 acquires s with a
    spinning Test&Set, then reads y and x.  Data-race-free, so every model
    must make it appear sequentially consistent (reads return 1,1). *)

val queue_bug : ?region:int -> ?stale:int -> unit -> Ast.program
(** Figure 2a's program.  P1 enqueues the address of a work region
    ([region], paper value 100) and clears [QEmpty]; P2 dequeues and works
    on [addr .. addr+region); P3 independently works on region
    [0 .. region).  The Test&Set operations that should protect the queue
    were "omitted due to an oversight", so the program races on [Q] and
    [QEmpty]; on weak hardware P2 can dequeue the stale address [stale]
    (paper value 37) even though it saw [QEmpty = 0], making it trample
    P3's region — the paper's non-sequentially-consistent data races. *)

val dekker : Ast.program
(** Store-buffering litmus: P1 writes x, reads y; P2 writes y, reads x.
    Both may read 0 only on weak hardware. *)

val dekker_fenced : Ast.program
(** {!dekker} with a fence between each processor's store and load.  On
    fence-honouring hardware the (0,0) outcome disappears; the variants
    campaign uses it to expose [fence=nop] hardware.  Still racy — the
    x/y accesses remain unsynchronized data operations (fences record no
    operation and add no hb1 edges). *)

val read_own_write : Ast.program
(** One processor stores then reloads the same location.  Race-free; any
    variant whose read misses its own buffered write ([read=bypass])
    returns 0 and violates Condition 3.4 clause 1. *)

val mp_data_flag : Ast.program
(** Message passing with a {e data} flag — the classic bug this line of
    work targets: spinning on an ordinary load races with the flag write,
    so the payload read may be stale on weak hardware. *)

val mp_release_acquire : Ast.program
(** Message passing with release/acquire flag accesses.  Data-race-free
    (the flag race is sync–sync, which Definition 2.4 does not count as a
    data race). *)

val handoff_update : Ast.program
(** Release/acquire handoff where the consumer also {e writes} the
    payload.  Data-race-free, but the Eraser-style lockset baseline
    false-alarms on the consumer's write (no lock is ever held), while
    the static sync-pairing analysis proves the ordering. *)

val guarded_handoff : Ast.program
(** P0 stores a value and Unsets a flag; P1 Test&Sets the flag and reads
    the value only if it acquired.  Data-race-free without any spinning,
    so its SC executions can be enumerated exhaustively. *)

val unguarded_handoff : Ast.program
(** Same, but P1 reads unconditionally — the minimal racy program. *)

val counter_locked : Ast.program
(** Two processors increment a shared counter inside Test&Set/Unset
    critical sections.  Data-race-free; the final counter is always 2. *)

val counter_racy : Ast.program
(** The same increments without the lock: lost updates and data races. *)

val disjoint : Ast.program
(** Two processors touching disjoint locations: race-free with no
    synchronization at all. *)

val peterson : Ast.program
(** Peterson's mutual-exclusion algorithm written, as it classically is,
    with ordinary loads and stores.  Correct under SC; on weak hardware
    the flag/turn handshake races and mutual exclusion can fail — the
    canonical algorithm this line of work warns about. *)

val lazy_init : Ast.program
(** Double-checked lazy initialization: both processors check [init]
    without synchronization, initialize under a Test&Set lock, then read
    the payload.  The unsynchronized fast path races; on weak hardware a
    processor can observe [init = 1] yet read a stale payload. *)

val barrier_phases : ?n_procs:int -> unit -> Ast.program
(** A two-phase computation separated by a correct barrier: arrivals are
    counted under a Test&Set lock and the last arriver opens a gate with
    [Unset], which the others await with acquire spins.  Data-race-free;
    phase-2 reads always observe phase-1 writes on every model. *)

val all : (string * Ast.program) list
(** Every stock program by name ([queue_bug] with default parameters). *)

val find : string -> Ast.program option
