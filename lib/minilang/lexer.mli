(** Lexer for the concrete program syntax (see {!Parser} for the
    grammar).  Comments run from [#] to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | ASSIGN              (** [:=] *)
  | EQUALS              (** [=] (location initializers) *)
  | LPAREN | RPAREN
  | LBRACE | RBRACE
  | LBRACKET | RBRACKET
  | COMMA
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQEQ | NEQ | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | KW_PROGRAM | KW_ARRAY | KW_LOC | KW_PROC
  | KW_IF | KW_ELSE | KW_WHILE
  | KW_ACQUIRE | KW_RELEASE | KW_UNSET | KW_TAS | KW_FAA | KW_FENCE | KW_MEM
  | EOF

type located = { token : token; line : int; col : int }
(** [line] and [col] are 1-based and mark the first character of the
    token. *)

exception Error of string
(** Message includes the line and column numbers. *)

val tokenize : string -> located list
(** @raise Error on an unrecognized character or malformed number. *)

val describe : token -> string
