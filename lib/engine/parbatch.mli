(** Domain-parallel batch evaluation for deterministic Monte-Carlo loops.

    The simulate-and-analyze pipeline is embarrassingly parallel across
    seeds: every run is a pure function of its seed (all RNG state is
    per-instance).  [map] fans a batch out over OCaml 5 domains with
    chunked work distribution and ordered result collection, so the
    output — including which exception propagates when several items
    fail — is identical for every job count.

    Work functions must not print or touch shared mutable state: compute
    in the workers, aggregate and print in the caller. *)

val default_jobs : unit -> int
(** {!Domain.recommended_domain_count} — a sensible [jobs] for
    compute-bound batches. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f arr] is [Array.map f arr] evaluated on up to [jobs]
    domains (default {!default_jobs}, clamped to the array length).
    [jobs = 1] runs serially in the calling domain — no domain is
    spawned, and items are evaluated in index order.  If any [f] raises,
    the exception of the smallest failing index is re-raised with its
    backtrace after all workers have joined.

    @raise Invalid_argument if [jobs < 1]. *)

val run_timeout : timeout:float -> (unit -> 'b) -> ('b, [ `Timeout ]) result
(** [run_timeout ~timeout f] evaluates [f ()] on a fresh domain and waits
    at most [timeout] seconds (wall clock) for it to finish.  On timeout
    the domain cannot be cancelled: it is abandoned together with the
    read end of its completion pipe and keeps burning a core until it
    returns or the process exits — the budget bounds the {e caller}, not
    the task.  [timeout <= 0.] disables the budget and runs [f] inline.
    If [f] raises, the exception is re-raised here with its backtrace. *)

val map_timeout :
  ?jobs:int -> timeout:float -> ('a -> 'b) -> 'a array -> ('b, [ `Timeout ]) result array
(** [map_timeout ~jobs ~timeout f arr] is {!map} with a per-item
    wall-clock budget: each item runs on its own domain (at most [jobs]
    in flight, default {!default_jobs}) and an item still running
    [timeout] seconds after it was started yields [Error `Timeout] in
    its slot while the rest of the batch proceeds — one wedged item can
    no longer stall the whole batch.  Timed-out domains are abandoned as
    in {!run_timeout}.  Results are in index order; if any [f] raises,
    the exception of the smallest failing index is re-raised after the
    batch drains, matching {!map}.  [timeout <= 0.] disables the budget
    and evaluates serially inline.

    @raise Invalid_argument if [jobs < 1]. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

val map_seeds : ?jobs:int -> int -> (int -> 'b) -> 'b array
(** [map_seeds ~jobs n f] maps [f] over the seed range [0 .. n-1]. *)

val iter_seeds : ?jobs:int -> int -> (int -> unit) -> unit
