let default_jobs () = Domain.recommended_domain_count ()

(* Workers claim fixed-size chunks of the index space from a shared atomic
   cursor — dynamic load balancing without any per-item contention — and
   write results (and any exception) into per-index slots, so collection
   is ordered by construction and the output is independent of how the
   chunks happened to interleave.  After the join, the error at the
   smallest index wins: which exception propagates is deterministic even
   when several items fail on different workers. *)
let map ?jobs f arr =
  let n = Array.length arr in
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Parbatch.map: jobs must be >= 1"
    | Some j -> min j n
    | None -> min (default_jobs ()) n
  in
  if n = 0 then [||]
  else if jobs <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let chunk = max 1 (n / (jobs * 4)) in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n then begin
          for i = start to min n (start + chunk) - 1 do
            match f arr.(i) with
            | v -> results.(i) <- Some v
            | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
          done;
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index ran and none stored an error *))
      results
  end

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

let map_seeds ?jobs n f = map ?jobs f (Array.init n (fun s -> s))

let iter_seeds ?jobs n f = ignore (map_seeds ?jobs n f)
