let default_jobs () = Domain.recommended_domain_count ()

(* Workers claim fixed-size chunks of the index space from a shared atomic
   cursor — dynamic load balancing without any per-item contention — and
   write results (and any exception) into per-index slots, so collection
   is ordered by construction and the output is independent of how the
   chunks happened to interleave.  After the join, the error at the
   smallest index wins: which exception propagates is deterministic even
   when several items fail on different workers. *)
let map ?jobs f arr =
  let n = Array.length arr in
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Parbatch.map: jobs must be >= 1"
    | Some j -> min j n
    | None -> min (default_jobs ()) n
  in
  if n = 0 then [||]
  else if jobs <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let chunk = max 1 (n / (jobs * 4)) in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n then begin
          for i = start to min n (start + chunk) - 1 do
            match f arr.(i) with
            | v -> results.(i) <- Some v
            | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
          done;
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index ran and none stored an error *))
      results
  end

(* --- wall-clock-bounded evaluation ------------------------------------

   OCaml 5 gives us no [Domain.join] with a timeout and no
   [Condition.timedwait], so a bounded wait has to go through the file
   descriptor layer: each timed task runs on its own domain, publishes
   its outcome through an atomic slot, and then writes one byte to a
   pipe.  The caller waits for readability with [Unix.select] under a
   deadline.  On timeout the task's domain keeps running (a domain
   cannot be cancelled) — we abandon it along with the read end of its
   pipe and move on.  The write end is always closed by the worker
   itself, and the caller never closes the read end before the worker
   has written, so no SIGPIPE can arise.  An abandoned spinning domain
   is safe (the runtime's poll points keep stop-the-world working); it
   just burns a core until process exit, which is exactly the damage a
   wedged task would have done anyway. *)

type 'b outcome =
  | Pending
  | Value of 'b
  | Raised of exn * Printexc.raw_backtrace

type 'b timed = {
  rd : Unix.file_descr;
  slot : 'b outcome Atomic.t;
  dom : unit Domain.t;
  deadline : float;
}

let spawn_timed ~timeout f =
  let rd, wr = Unix.pipe ~cloexec:true () in
  let slot = Atomic.make Pending in
  let dom =
    Domain.spawn (fun () ->
        (match f () with
        | v -> Atomic.set slot (Value v)
        | exception e -> Atomic.set slot (Raised (e, Printexc.get_raw_backtrace ())));
        (try ignore (Unix.write wr (Bytes.make 1 '\000') 0 1) with _ -> ());
        (try Unix.close wr with _ -> ()))
  in
  { rd; slot; dom; deadline = Unix.gettimeofday () +. timeout }

(* The byte is written after the atomic store, so readability implies the
   slot is filled; join is then immediate. *)
let collect t =
  (try Unix.close t.rd with _ -> ());
  Domain.join t.dom;
  match Atomic.get t.slot with
  | Value v -> Ok v
  | Raised (e, bt) -> Error (e, bt)
  | Pending -> assert false (* the completion byte was observed *)

let select_readable fds wait =
  match Unix.select fds [] [] wait with
  | rs, _, _ -> rs
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

let run_timeout ~timeout f =
  if timeout <= 0. then Ok (f ())
  else begin
    let t = spawn_timed ~timeout f in
    let rec wait () =
      let left = t.deadline -. Unix.gettimeofday () in
      if select_readable [ t.rd ] (Float.max 0. left) <> [] then
        match collect t with
        | Ok v -> Ok v
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt
      else if left <= 0. then Error `Timeout (* abandon domain and pipe *)
      else wait ()
    in
    wait ()
  end

let map_timeout ?jobs ~timeout f arr =
  let n = Array.length arr in
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Parbatch.map_timeout: jobs must be >= 1"
    | Some j -> min j (max n 1)
    | None -> min (default_jobs ()) (max n 1)
  in
  if n = 0 then [||]
  else if timeout <= 0. then Array.map (fun x -> Ok (f x)) arr
  else begin
    let out = Array.make n None in
    let errors = Array.make n None in
    let next = ref 0 in
    let live = ref [] in
    let spawn i =
      let t = spawn_timed ~timeout (fun () -> f arr.(i)) in
      live := (i, t) :: !live
    in
    while !next < n || !live <> [] do
      while !next < n && List.length !live < jobs do
        spawn !next;
        incr next
      done;
      let now = Unix.gettimeofday () in
      let earliest =
        List.fold_left (fun a (_, t) -> Float.min a t.deadline) infinity !live
      in
      let rs =
        select_readable (List.map (fun (_, t) -> t.rd) !live)
          (Float.max 0. (earliest -. now))
      in
      (* Collect completions first so a task finishing right at its
         deadline is reported as a result, not a timeout. *)
      let finished, rest = List.partition (fun (_, t) -> List.mem t.rd rs) !live in
      List.iter
        (fun (i, t) ->
          match collect t with
          | Ok v -> out.(i) <- Some (Ok v)
          | Error (e, bt) ->
              errors.(i) <- Some (e, bt);
              out.(i) <- Some (Error `Timeout))
        finished;
      let now = Unix.gettimeofday () in
      let expired, rest = List.partition (fun (_, t) -> t.deadline <= now) rest in
      List.iter (fun (i, _) -> out.(i) <- Some (Error `Timeout)) expired;
      live := rest
    done;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index completed, expired, or errored *))
      out
  end

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

let map_seeds ?jobs n f = map ?jobs f (Array.init n (fun s -> s))

let iter_seeds ?jobs n f = ignore (map_seeds ?jobs n f)
