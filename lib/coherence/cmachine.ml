type t = {
  model : Memsim.Model.t;
  src : Memsim.Thread_intf.source;
  mem : Memsim.Op.value array;
  mem_writer : int array;
  caches : Cache.t array;
  inval_queues : (Memsim.Op.loc, unit) Hashtbl.t array;
  mutable ops_rev : Memsim.Op.t list;
  mutable n_ops : int;
  pindex : int array;
  rf : (int, int) Hashtbl.t;
  commit : (int, int) Hashtbl.t;
  mutable clock : int;
  mutable sched_rev : Memsim.Exec.decision list;
  mutable truncated : bool;
  mutable n_steps : int;
}

let create ?n_lines ?(warm = true) ~model (src : Memsim.Thread_intf.source) =
  if Memsim.Model.fifo_buffer model then
    invalid_arg
      "Cmachine.create: lazy invalidation cannot implement TSO (delayed \
       invalidations reorder reads, which TSO forbids)";
  let n_lines = match n_lines with Some n -> n | None -> max 1 src.n_locs in
  let mem = Array.make src.n_locs 0 in
  List.iter (fun (l, v) -> mem.(l) <- v) src.init;
  let caches = Array.init src.n_procs (fun _ -> Cache.create ~n_lines) in
  if warm then
    Array.iter (fun c -> Cache.warm c ~n_locs:src.n_locs ~init:src.init) caches;
  {
    model;
    src;
    mem;
    mem_writer = Array.make src.n_locs (-1);
    caches;
    inval_queues = Array.init src.n_procs (fun _ -> Hashtbl.create 8);
    ops_rev = [];
    n_ops = 0;
    pindex = Array.make src.n_procs 0;
    rf = Hashtbl.create 64;
    commit = Hashtbl.create 64;
    clock = 0;
    sched_rev = [];
    truncated = false;
    n_steps = 0;
  }

let record_op t ~proc ~loc ~kind ~cls ~value ~label =
  let id = t.n_ops in
  let o = { Memsim.Op.id; proc; pindex = t.pindex.(proc); loc; kind; cls; value; label } in
  t.pindex.(proc) <- t.pindex.(proc) + 1;
  t.ops_rev <- o :: t.ops_rev;
  t.n_ops <- t.n_ops + 1;
  o

let tick t =
  let c = t.clock in
  t.clock <- c + 1;
  c

(* -- invalidation queues -------------------------------------------- *)

let enqueue_inval t ~except loc =
  Array.iteri
    (fun p q ->
      if p <> except then
        match Cache.lookup t.caches.(p) loc with
        | Some _ ->
          if Memsim.Model.buffers_writes t.model (* weak: delay *) then
            Hashtbl.replace q loc ()
          else Cache.invalidate t.caches.(p) loc
        | None -> ())
    t.inval_queues

let apply_inval t p loc =
  Hashtbl.remove t.inval_queues.(p) loc;
  Cache.invalidate t.caches.(p) loc

let flush_invals t p =
  let locs = Hashtbl.fold (fun l () acc -> l :: acc) t.inval_queues.(p) [] in
  List.iter (apply_inval t p) locs

(* Which sync classes force the issuing processor's queue to flush:
   reader-side dual of [Model.drains_on]. *)
let flushes_on model (cls : Memsim.Op.op_class) =
  match cls with
  | Memsim.Op.Data -> false
  | Memsim.Op.Acquire | Memsim.Op.Release | Memsim.Op.Plain_sync -> (
    match model with
    | Memsim.Model.SC | Memsim.Model.TSO -> false (* queues never populated / rejected *)
    | Memsim.Model.WO | Memsim.Model.DRF0 -> true
    | Memsim.Model.RCsc | Memsim.Model.DRF1 -> cls = Memsim.Op.Acquire
    | Memsim.Model.Custom _ ->
      (* derive the reader-side dual from the predicates: SC/TSO-like
         variants keep their queues empty, release/acquire-distinguishing
         ones flush on acquires only *)
      if
        (not (Memsim.Model.buffers_writes model))
        || Memsim.Model.fifo_buffer model
      then false
      else if Memsim.Model.distinguishes_release_acquire model then
        cls = Memsim.Op.Acquire
      else true)

(* -- bus ------------------------------------------------------------- *)

(* Current global value of [loc]: the Modified owner's copy, else memory.
   A Modified owner is downgraded to Shared and written back. *)
let bus_read_global t loc =
  let owner = ref None in
  Array.iteri
    (fun p c ->
      match Cache.lookup c loc with
      | Some ({ Cache.state = Cache.Modified; _ } as line) -> owner := Some (p, line)
      | Some _ | None -> ())
    t.caches;
  match !owner with
  | Some (p, line) ->
    t.mem.(loc) <- line.Cache.value;
    t.mem_writer.(loc) <- line.Cache.writer;
    Cache.update t.caches.(p) loc ~value:line.Cache.value ~writer:line.Cache.writer
      ~state:Cache.Shared;
    (line.Cache.value, line.Cache.writer)
  | None -> (t.mem.(loc), t.mem_writer.(loc))

let write_back_victim t = function
  | Some { Cache.state = Cache.Modified; loc; value; writer } ->
    t.mem.(loc) <- value;
    t.mem_writer.(loc) <- writer
  | Some { Cache.state = Cache.Shared; _ } | None -> ()

(* -- issue ----------------------------------------------------------- *)

let do_issue t p =
  match t.src.peek p with
  | None -> invalid_arg "Cmachine.perform: issue on halted processor"
  | Some req ->
    let now = tick t in
    let cache = t.caches.(p) in
    let stats = Cache.stats cache in
    (match req with
     | Memsim.Thread_intf.Read { loc; cls; label; k } ->
       if flushes_on t.model cls then flush_invals t p;
       let value, writer =
         if Memsim.Op.is_sync cls then
           (* sync reads are bus-direct and never served from the cache *)
           bus_read_global t loc
         else begin
           match Cache.lookup cache loc with
           | Some line ->
             stats.Cache.hits <- stats.Cache.hits + 1;
             (line.Cache.value, line.Cache.writer)
           | None ->
             stats.Cache.misses <- stats.Cache.misses + 1;
             let value, writer = bus_read_global t loc in
             write_back_victim t
               (Cache.insert cache
                  { Cache.loc; state = Cache.Shared; value; writer });
             (value, writer)
         end
       in
       let o = record_op t ~proc:p ~loc ~kind:Memsim.Op.Read ~cls ~value ~label in
       Hashtbl.replace t.rf o.Memsim.Op.id writer;
       Hashtbl.replace t.commit o.Memsim.Op.id now;
       k value
     | Memsim.Thread_intf.Write { loc; value; cls; label; k } ->
       if flushes_on t.model cls then flush_invals t p;
       let o = record_op t ~proc:p ~loc ~kind:Memsim.Op.Write ~cls ~value ~label in
       if Memsim.Op.is_sync cls then begin
         (* bus-direct: make the global copy current, kill every cached
            copy (others lazily on weak models, own immediately) *)
         ignore (bus_read_global t loc);
         t.mem.(loc) <- value;
         t.mem_writer.(loc) <- o.Memsim.Op.id;
         enqueue_inval t ~except:p loc;
         Cache.invalidate cache loc;
         Hashtbl.remove t.inval_queues.(p) loc
       end
       else begin
         (* BusRdX / upgrade: take the line Modified *)
         (match Cache.lookup cache loc with
          | Some { Cache.state = Cache.Modified; _ } ->
            stats.Cache.hits <- stats.Cache.hits + 1
          | Some { Cache.state = Cache.Shared; _ } | None -> (
            stats.Cache.misses <- stats.Cache.misses + 1;
            (* pull the current copy home first so a Modified peer is not
               lost, then claim ownership *)
            ignore (bus_read_global t loc)));
         enqueue_inval t ~except:p loc;
         Hashtbl.remove t.inval_queues.(p) loc;
         (match Cache.lookup cache loc with
          | Some _ ->
            Cache.update cache loc ~value ~writer:o.Memsim.Op.id ~state:Cache.Modified
          | None ->
            write_back_victim t
              (Cache.insert cache
                 { Cache.loc; state = Cache.Modified; value; writer = o.Memsim.Op.id }))
       end;
       Hashtbl.replace t.commit o.Memsim.Op.id now;
       k ()
     | Memsim.Thread_intf.Rmw { loc; f; rcls; wcls; label; k } ->
       if flushes_on t.model rcls || flushes_on t.model wcls then flush_invals t p;
       let old, old_writer = bus_read_global t loc in
       let r = record_op t ~proc:p ~loc ~kind:Memsim.Op.Read ~cls:rcls ~value:old ~label in
       Hashtbl.replace t.rf r.Memsim.Op.id old_writer;
       Hashtbl.replace t.commit r.Memsim.Op.id now;
       let nv = f old in
       let w = record_op t ~proc:p ~loc ~kind:Memsim.Op.Write ~cls:wcls ~value:nv ~label in
       t.mem.(loc) <- nv;
       t.mem_writer.(loc) <- w.Memsim.Op.id;
       enqueue_inval t ~except:p loc;
       Cache.invalidate cache loc;
       Hashtbl.remove t.inval_queues.(p) loc;
       Hashtbl.replace t.commit w.Memsim.Op.id now;
       k old
     | Memsim.Thread_intf.Fence { k; label = _ } ->
       flush_invals t p;
       k ())

(* -- stepping --------------------------------------------------------- *)

let enabled t =
  let issues = ref [] in
  for p = t.src.n_procs - 1 downto 0 do
    match t.src.peek p with
    | Some _ -> issues := Memsim.Exec.Issue p :: !issues
    | None -> ()
  done;
  let invals = ref [] in
  for p = t.src.n_procs - 1 downto 0 do
    Hashtbl.iter
      (fun loc () -> invals := Memsim.Exec.Retire (p, loc) :: !invals)
      t.inval_queues.(p)
  done;
  !issues @ List.sort compare !invals

let perform t d =
  (match d with
   | Memsim.Exec.Issue p -> do_issue t p
   | Memsim.Exec.Retire (p, loc) ->
     if not (Hashtbl.mem t.inval_queues.(p) loc) then
       invalid_arg "Cmachine.perform: no such pending invalidation";
     ignore (tick t);
     apply_inval t p loc);
  t.sched_rev <- d :: t.sched_rev;
  t.n_steps <- t.n_steps + 1

let finished t = enabled t = []

let pending_invalidations t =
  Array.fold_left (fun acc q -> acc + Hashtbl.length q) 0 t.inval_queues

let cache_stats t = Array.map Cache.stats t.caches

let to_execution t =
  let ops = Array.of_list (List.rev t.ops_rev) in
  let by_proc = Array.make t.src.n_procs [] in
  Array.iter
    (fun (o : Memsim.Op.t) -> by_proc.(o.Memsim.Op.proc) <- o :: by_proc.(o.Memsim.Op.proc))
    ops;
  let by_proc = Array.map (fun l -> Array.of_list (List.rev l)) by_proc in
  let rf = Array.make (Array.length ops) (-2) in
  let commit = Array.make (Array.length ops) max_int in
  Array.iter
    (fun (o : Memsim.Op.t) ->
      (match Hashtbl.find_opt t.rf o.Memsim.Op.id with
       | Some w -> rf.(o.Memsim.Op.id) <- w
       | None -> ());
      match Hashtbl.find_opt t.commit o.Memsim.Op.id with
      | Some c -> commit.(o.Memsim.Op.id) <- c
      | None -> ())
    ops;
  (* fold Modified lines into the memory image *)
  let final_mem = Array.copy t.mem in
  Array.iter
    (fun c ->
      Cache.iter_lines c (fun line ->
          if line.Cache.state = Cache.Modified then
            final_mem.(line.Cache.loc) <- line.Cache.value))
    t.caches;
  {
    Memsim.Exec.model = t.model;
    n_procs = t.src.n_procs;
    n_locs = t.src.n_locs;
    ops;
    by_proc;
    rf;
    commit;
    final_mem;
    truncated = t.truncated;
    schedule = List.rev t.sched_rev;
  }

let run ?(max_steps = 20_000) ?n_lines ?warm ~model ~sched src =
  let t = create ?n_lines ?warm ~model src in
  let rec loop () =
    if t.n_steps >= max_steps then t.truncated <- true
    else
      match enabled t with
      | [] -> ()
      | decisions ->
        perform t (Memsim.Sched.choose sched decisions);
        loop ()
  in
  loop ();
  to_execution t

let run_program ?max_steps ?n_lines ?warm ~model ~sched p =
  run ?max_steps ?n_lines ?warm ~model ~sched (Minilang.Interp.source p)
