module Exec = Memsim.Exec
module Machine = Memsim.Machine
module Model = Memsim.Model
module Op = Memsim.Op
module Absdom = Staticcheck.Absdom
module Absint = Staticcheck.Absint
module Candidates = Staticcheck.Candidates
module Lint = Staticcheck.Lint
module Postmortem = Racedetect.Postmortem
module Race = Racedetect.Race
module Trace = Tracing.Trace
module Event = Tracing.Event
module Codec = Tracing.Codec

type status = Confirmed | Refuted | Unknown

type witness = {
  schedule : Exec.decision list;
  exec : Exec.t;
  analysis : Postmortem.analysis;
  race : Race.t;
}

type verdict = {
  pair : Candidates.pair;
  status : status;
  witness : witness option;
  schedules : int;
  complete : bool;
}

type report = {
  program : Minilang.Ast.program;
  lint : Lint.report;
  model : Model.t;
  max_steps : int;
  limit : int;
  data : verdict list;
  sync : verdict list;
}

(* -- matching a dynamic race against a static candidate ---------------- *)

let ops_of_event (e : Event.t) =
  match e.Event.body with
  | Event.Computation { ops; _ } -> ops
  | Event.Sync { op; _ } -> [ op ]

let label_ok (a : string option) (b : string option) =
  match (a, b) with Some x, Some y -> x = y | _ -> true

(* An operation realizes a static access when it was issued by the same
   processor, has the same kind and class, its address lies in the
   access's abstract address set, and the static program labels agree
   when both sides carry one.  For a race match the address must
   additionally lie in the candidate's conflict set and be one of the
   race's conflicting locations. *)
let op_matches (acc : Absint.access) ~pair_locs ~race_locs (op : Op.t) =
  op.Op.proc = acc.Absint.proc
  && op.Op.kind = acc.Absint.kind
  && op.Op.cls = acc.Absint.cls
  && Absdom.contains acc.Absint.addr op.Op.loc
  && Absdom.contains pair_locs op.Op.loc
  && List.mem op.Op.loc race_locs
  && label_ok acc.Absint.label op.Op.label

let match_race (pair : Candidates.pair) (a : Postmortem.analysis) =
  let events = a.Postmortem.trace.Trace.events in
  let side acc (r : Race.t) eid =
    List.exists
      (op_matches acc ~pair_locs:pair.Candidates.locs ~race_locs:r.Race.locs)
      (ops_of_event events.(eid))
  in
  List.find_opt
    (fun (r : Race.t) ->
      (side pair.Candidates.a r r.Race.a && side pair.Candidates.b r r.Race.b)
      || (side pair.Candidates.a r r.Race.b && side pair.Candidates.b r r.Race.a))
    a.Postmortem.races

(* -- triage of one candidate ------------------------------------------- *)

let replay_prefix ~model mk prefix =
  let m = Machine.create ~model (mk ()) in
  List.iter (Machine.perform m) prefix;
  if not (Machine.finished m) then Machine.set_truncated m;
  Machine.force_drain m;
  Machine.to_execution m

(* Greedy witness minimization: the shortest schedule prefix whose replay
   (buffers drained, truncation marked) still exhibits a race matching
   the candidate.  A race in a prefix is a race of every extension —
   hb1 only gains events — so the scan from the short end finds the
   minimal confirming prefix. *)
let minimize ~model mk pair sched =
  let n = List.length sched in
  let rec go k =
    if k > n then
      invalid_arg "Triage.minimize: full schedule no longer confirms"
    else
      let prefix = List.filteri (fun i _ -> i < k) sched in
      let exec = replay_prefix ~model mk prefix in
      let analysis = Postmortem.analyze_execution exec in
      match match_race pair analysis with
      | Some race -> { schedule = prefix; exec; analysis; race }
      | None -> go (k + 1)
  in
  go 1

let triage_pair ?(max_steps = 400) ?(limit = 2_000) ~model mk
    (pair : Candidates.pair) =
  let confirms e =
    match_race pair (Postmortem.analyze_execution e) <> None
  in
  let res =
    Dpor.explore ~max_steps ~limit
      ~prefer:[ pair.Candidates.a.Absint.proc; pair.Candidates.b.Absint.proc ]
      ~stop:confirms ~model mk
  in
  if res.Dpor.stopped then begin
    (* the stop predicate fired on the last recorded execution *)
    let full = List.nth res.Dpor.executions (res.Dpor.schedules - 1) in
    let w = minimize ~model mk pair full.Exec.schedule in
    {
      pair;
      status = Confirmed;
      witness = Some w;
      schedules = res.Dpor.schedules;
      complete = false;
    }
  end
  else
    {
      pair;
      status = (if res.Dpor.complete then Refuted else Unknown);
      witness = None;
      schedules = res.Dpor.schedules;
      complete = res.Dpor.complete;
    }

(* -- whole-program runs ------------------------------------------------- *)

let run ?(max_steps = 400) ?(limit = 2_000) ?(sync = false) ?jobs
    ?(model = Model.SC) program =
  let lint = Lint.analyze program in
  let mk () = Minilang.Interp.source program in
  let triage_all =
    Engine.Parbatch.map_list ?jobs (triage_pair ~max_steps ~limit ~model mk)
  in
  let data = triage_all lint.Lint.data_candidates in
  let sync_v = if sync then triage_all lint.Lint.sync_candidates else [] in
  { program; lint; model; max_steps; limit; data; sync = sync_v }

let exit_code r =
  if List.exists (fun v -> v.status = Confirmed) r.data then 2
  else if List.exists (fun v -> v.status = Unknown) (r.data @ r.sync) then 3
  else 0

(* -- witness files ------------------------------------------------------ *)

let race_endpoints (trace : Trace.t) (r : Race.t) =
  let ev e = (trace.Trace.events.(e).Event.proc, trace.Trace.events.(e).Event.seq) in
  (ev r.Race.a, ev r.Race.b, r.Race.locs)

let write_witness path w =
  let trace = w.analysis.Postmortem.trace in
  Codec.write_file ~version:Codec.version_checksummed path trace;
  match Codec.read_file path with
  | Error e -> Error e
  | Ok decoded ->
    let want = race_endpoints trace w.race in
    let reanalysis = Postmortem.analyze decoded in
    if
      List.exists
        (fun r -> race_endpoints decoded r = want)
        reanalysis.Postmortem.races
    then Ok ()
    else
      Error
        (Format.asprintf
           "witness %s: race %a not reproduced by analyzing the written trace"
           path Race.pp w.race)

(* -- rendering ----------------------------------------------------------- *)

let status_name = function
  | Confirmed -> "CONFIRMED"
  | Refuted -> "REFUTED"
  | Unknown -> "UNKNOWN"

let pp_verdict p ppf v =
  Format.fprintf ppf "[%s] %a" (status_name v.status) (Lint.pp_pair p) v.pair;
  match v.status with
  | Confirmed ->
    let w = Option.get v.witness in
    Format.fprintf ppf "@,  witness: %d-step schedule, found after %d schedule(s)"
      (List.length w.schedule) v.schedules
  | Refuted ->
    Format.fprintf ppf "@,  complete exploration: %d schedule(s), no race on this pair"
      v.schedules
  | Unknown ->
    Format.fprintf ppf "@,  bounds hit after %d schedule(s); inconclusive"
      v.schedules

let count st vs = List.length (List.filter (fun v -> v.status = st) vs)

let pp ppf r =
  let p = r.program in
  Format.pp_open_vbox ppf 0;
  Format.fprintf ppf
    "triage of %s under %s: %d data candidate(s), %d sync-sync candidate(s)"
    p.Minilang.Ast.name (Model.name r.model)
    (List.length r.lint.Lint.data_candidates)
    (List.length r.lint.Lint.sync_candidates);
  List.iter (fun v -> Format.fprintf ppf "@,%a" (pp_verdict p) v) r.data;
  if r.sync <> [] then begin
    Format.fprintf ppf "@,sync-sync pairs (informational):";
    List.iter (fun v -> Format.fprintf ppf "@,%a" (pp_verdict p) v) r.sync
  end;
  Format.fprintf ppf "@,summary: %d confirmed, %d refuted, %d unknown"
    (count Confirmed r.data) (count Refuted r.data)
    (count Unknown (r.data @ r.sync));
  Format.pp_close_box ppf ()
