(** Robustness verification: static certification with a dynamic
    closure.

    Is every behaviour the weak model admits SC-explainable?  The
    static pass ({!Staticcheck.Robust}) proves ROBUST outright when no
    critical cycle is feasible under the variant; otherwise a
    candidate-directed DPOR search ({!Dpor.explore}, preferring the
    processors on feasible cycles — the {!Triage} discipline) hunts for
    an execution the enumerated SC pool ({!Scpool}) cannot explain.
    The first hit is greedily minimized and emitted as a replay-verified
    v2 witness trace (byte-identical replay, codec round trip, identical
    re-analysis); a complete stop-free exploration proves ROBUST
    dynamically; budget exhaustion — or an SC pool that does not
    enumerate (spinning program) — is UNKNOWN. *)

type witness = {
  w_schedule : Memsim.Exec.decision list;  (** minimized breaking prefix *)
  w_exec : Memsim.Exec.t;  (** its drained replay *)
  w_path : string option;  (** witness trace file, when requested *)
  w_verified : (unit, string) result;
}

type verdict =
  | Robust_verdict of [ `Static | `Dynamic ]
  | Not_robust of witness
  | Unknown of string

type t = {
  program : Minilang.Ast.program;
  model : Memsim.Model.t;
  static_ : Staticcheck.Robust.t;
  frontier : Staticcheck.Robust.frontier_entry list;
  verdict : verdict;
  sc_behaviours : int;  (** distinct SC behaviours; 0 when pool unbuilt *)
  schedules : int;  (** weak schedules the closure explored *)
}

val run :
  ?max_steps:int ->
  ?limit:int ->
  ?sc_limit:int ->
  ?witness_path:string ->
  model:Memsim.Model.t ->
  Minilang.Ast.program ->
  t
(** Defaults: [max_steps] 2000 per schedule, [limit] 100,000 schedules,
    [sc_limit] 100,000 SC executions.  [witness_path] writes the
    minimized non-SC witness trace there when the verdict is
    NOT-ROBUST. *)

val exit_code : t -> int
(** [0] ROBUST, [2] NOT-ROBUST (verified witness), [3] UNKNOWN; [1]
    when a witness failed verification (internal error). *)

val verdict_str : t -> string
val pp : ?explain:bool -> Format.formatter -> t -> unit
