module Exec = Memsim.Exec
module Machine = Memsim.Machine
module Model = Memsim.Model
module Variant = Memsim.Variant
module Op = Memsim.Op
module Sched = Memsim.Sched
module Enumerate = Memsim.Enumerate
module Condition = Racedetect.Condition
module Ophb = Racedetect.Ophb
module Postmortem = Racedetect.Postmortem
module Trace = Tracing.Trace
module Codec = Tracing.Codec

(* The hardware-variant campaign: sweep variant x stock-program x seed,
   assert per variant whether Condition 3.4 (the SC-prefix property up
   to the first race) is preserved, and separately whether fences
   actually order buffered writes.  Each violating variant gets a
   minimized breaking schedule emitted as a replayable v2 witness trace,
   re-verified through decode + re-analysis — the triage witness
   discipline. *)

type check = Cond34 | Fence_contract

type witness = {
  w_check : check;
  w_program : string;
  w_seed : int option;  (* None: found by envelope enumeration *)
  w_schedule : Exec.decision list;
  w_exec : Exec.t;
  w_path : string option;
  w_verified : (unit, string) result;
}

type prediction = { p_cond34 : bool; p_fence : bool }

type verdict = {
  v_name : string;
  v_model : Model.t;
  predicted : prediction;
  cond34_ok : bool;
  fence_ok : bool;
  cond34_runs : int;
  fence_runs : int;
  cond34_witness : witness option;
  fence_witness : witness option;
}

type report = { verdicts : verdict list; seeds : int; as_predicted : bool }

(* The lattice points under test: the six named models re-expressed as
   canonical variants, plus the named off-lattice points (bounded depth,
   stalling reads, and the three deliberately broken knobs). *)
let roster =
  List.map
    (fun m ->
      (String.lowercase_ascii (Model.name m), Model.Custom (Model.variant m)))
    Model.all
  @ List.map (fun (n, v) -> (n, Model.Custom v)) Variant.aliases

(* Spin-free stock programs whose SC pools enumerate completely, so
   Condition.check is exact. *)
let programs =
  Minilang.Programs.
    [
      fig1a;
      dekker;
      dekker_fenced;
      read_own_write;
      mp_data_flag;
      mp_release_acquire;
      handoff_update;
      guarded_handoff;
      unguarded_handoff;
      counter_racy;
      disjoint;
    ]

let fence_litmus = Minilang.Programs.dekker_fenced

let sc_pool p = Scpool.build_exn p

let sched_for seed =
  if seed mod 2 = 0 then Sched.adversarial ~seed () else Sched.random ~seed

(* -- prefix-aware SC-explainability ---------------------------------- *)

(* The index-free form lives in {!Scpool}; the campaign itself runs on
   indexed pools ({!Scpool.explainable}) so the per-seed checks do not
   re-hash the pool. *)
let prefix_explainable = Scpool.prefix_explainable

let race_free e = Ophb.data_races (Ophb.build e) = []

(* -- witnesses --------------------------------------------------------- *)

let replay ~model mk prefix =
  let m = Machine.create ~model (mk ()) in
  List.iter (Machine.perform m) prefix;
  if not (Machine.finished m) then Machine.set_truncated m;
  Machine.force_drain m;
  Machine.to_execution m

(* Greedy minimization, triage-style: the shortest schedule prefix whose
   drained replay still breaks the property.  For a Condition 3.4
   (clause 1) witness the prefix must be race-free yet SC-inexplicable;
   a fence-contract witness only needs inexplicability (the fenced
   litmus races by design, Condition 3.4 itself is not at stake). *)
let minimize ~model ~sc ~require_racefree mk sched =
  let n = List.length sched in
  let violates e =
    (not (Scpool.explainable sc e))
    && ((not require_racefree) || race_free e)
  in
  let rec go k =
    if k > n then
      invalid_arg "Vcampaign.minimize: full schedule no longer violates"
    else
      let prefix = List.filteri (fun i _ -> i < k) sched in
      let e = replay ~model mk prefix in
      if violates e then (prefix, e) else go (k + 1)
  in
  go 1

let race_endpoints (trace : Trace.t) (r : Racedetect.Race.t) =
  let ev e =
    (trace.Trace.events.(e).Tracing.Event.proc,
     trace.Trace.events.(e).Tracing.Event.seq)
  in
  (ev r.Racedetect.Race.a, ev r.Racedetect.Race.b, r.Racedetect.Race.locs)

(* A witness must replay and survive the file round trip:
   1. re-performing the minimized schedule yields a byte-identical v2
      trace (the machine is deterministic in the schedule);
   2. the written v2 trace decodes, and re-analysis of the decoded copy
      reports exactly the races of the original (none, for a clause-1
      witness). *)
let verify ~model mk ?path (w : Exec.decision list) (exec : Exec.t) =
  let ( let* ) = Result.bind in
  let t0 = Trace.of_execution exec in
  let enc0 = Codec.encode ~version:Codec.version_checksummed t0 in
  let replayed = replay ~model mk w in
  let enc1 =
    Codec.encode ~version:Codec.version_checksummed (Trace.of_execution replayed)
  in
  let* () =
    if enc0 = enc1 then Ok ()
    else Error "replaying the schedule does not reproduce the trace byte for byte"
  in
  let check_decoded decoded =
    let races t =
      let a = Postmortem.analyze t in
      List.map (race_endpoints t) a.Postmortem.races |> List.sort compare
    in
    if
      Codec.encode ~version:Codec.version_checksummed decoded = enc0
      && races decoded = races t0
    then Ok ()
    else Error "decoded witness does not re-analyze identically"
  in
  match path with
  | None -> (
    (* no file requested: round-trip in memory *)
    match Codec.decode enc0 with
    | Ok decoded -> check_decoded decoded
    | Error e -> Error e)
  | Some path -> (
    Codec.write_file ~version:Codec.version_checksummed path t0;
    match Codec.read_file path with
    | Ok decoded -> check_decoded decoded
    | Error e -> Error e)

(* -- the sweep --------------------------------------------------------- *)

type cell = {
  c_variant : string;
  c_program : string;
  c_runs : int;
  c_violation : (int * Exec.t) option;  (* seed, first violating exec *)
}

let sweep_cell ~seeds ~pool (vname, model) (p : Minilang.Ast.program) =
  let mk () = Minilang.Interp.source p in
  let violation = ref None in
  for seed = 0 to seeds - 1 do
    if !violation = None then begin
      let e = Machine.run ~model ~sched:(sched_for seed) (mk ()) in
      let v = Condition.check ~sc:(Scpool.executions pool) e in
      if not v.Condition.holds then violation := Some (seed, e)
    end
  done;
  {
    c_variant = vname;
    c_program = p.Minilang.Ast.name;
    c_runs = seeds;
    c_violation = !violation;
  }

let fence_envelope model =
  let mk () = Minilang.Interp.source fence_litmus in
  let r = Enumerate.explore_weak ~limit:2_000_000 ~model mk in
  if not r.Enumerate.complete then
    invalid_arg "Vcampaign: fence litmus envelope did not enumerate completely";
  r.Enumerate.executions

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ())
  end

let run ?(seeds = 16) ?jobs ?witness_dir () =
  Option.iter mkdir_p witness_dir;
  let pools = List.map (fun p -> (p.Minilang.Ast.name, sc_pool p)) programs in
  let pool_of p = List.assoc p.Minilang.Ast.name pools in
  let fence_pool = pool_of fence_litmus in
  (* variant x program cells, fanned out on the domain pool *)
  let cells =
    Engine.Parbatch.map_list ?jobs
      (fun ((vm, p) : (string * Model.t) * Minilang.Ast.program) ->
        sweep_cell ~seeds ~pool:(pool_of p) vm p)
      (List.concat_map (fun vm -> List.map (fun p -> (vm, p)) programs) roster)
  in
  (* fence-contract check: the whole envelope of the fenced litmus,
     exactly — a violation is any behaviour outside the SC set *)
  let fence_cells =
    Engine.Parbatch.map_list ?jobs
      (fun (vname, model) ->
        let execs = fence_envelope model in
        let bad =
          List.find_opt (fun e -> not (Scpool.explainable fence_pool e)) execs
        in
        (vname, List.length execs, bad))
      roster
  in
  let witness_path vname check =
    Option.map
      (fun dir ->
        Filename.concat dir
          (Printf.sprintf "%s-%s.trace" vname
             (match check with Cond34 -> "cond34" | Fence_contract -> "fence")))
      witness_dir
  in
  let make_witness ~check ~model ~require_racefree ~vname p seed exec =
    let mk () = Minilang.Interp.source p in
    let sched, min_exec =
      minimize ~model ~sc:(pool_of p) ~require_racefree mk
        exec.Exec.schedule
    in
    let path = witness_path vname check in
    let verified = verify ~model mk ?path sched min_exec in
    {
      w_check = check;
      w_program = p.Minilang.Ast.name;
      w_seed = seed;
      w_schedule = sched;
      w_exec = min_exec;
      w_path = path;
      w_verified = verified;
    }
  in
  let verdicts =
    List.map
      (fun (vname, model) ->
        let v = Model.variant model in
        let predicted =
          {
            p_cond34 = Variant.preserves_condition v;
            p_fence = Variant.honors_fences v;
          }
        in
        let mine =
          List.filter (fun c -> c.c_variant = vname) cells
        in
        let cond34_runs =
          List.fold_left (fun a c -> a + c.c_runs) 0 mine
        in
        let first_violation =
          List.find_map
            (fun c ->
              Option.map
                (fun (seed, e) -> (c.c_program, seed, e))
                c.c_violation)
            mine
        in
        let cond34_witness =
          Option.map
            (fun (pname, seed, exec) ->
              let p = Option.get (Minilang.Programs.find pname) in
              (* clause-1 violations (race-free yet non-SC) minimize to a
                 race-free inexplicable prefix; a clause-2 violation has
                 no prefix criterion, so keep its full schedule *)
              let require_racefree = race_free exec in
              make_witness ~check:Cond34 ~model ~require_racefree ~vname p
                (Some seed) exec)
            first_violation
        in
        let vname', fence_runs, fence_bad =
          List.find (fun (n, _, _) -> n = vname) fence_cells
        in
        ignore vname';
        let fence_witness =
          Option.map
            (fun exec ->
              make_witness ~check:Fence_contract ~model ~require_racefree:false
                ~vname fence_litmus None exec)
            fence_bad
        in
        {
          v_name = vname;
          v_model = model;
          predicted;
          cond34_ok = cond34_witness = None;
          fence_ok = fence_witness = None;
          cond34_runs;
          fence_runs;
          cond34_witness;
          fence_witness;
        })
      roster
  in
  let witness_sound = function
    | None -> true
    | Some w -> w.w_verified = Ok ()
  in
  let as_predicted =
    List.for_all
      (fun v ->
        v.cond34_ok = v.predicted.p_cond34
        && v.fence_ok = v.predicted.p_fence
        && witness_sound v.cond34_witness
        && witness_sound v.fence_witness)
      verdicts
  in
  { verdicts; seeds; as_predicted }

(* -- rendering --------------------------------------------------------- *)

let check_name = function Cond34 -> "cond-3.4" | Fence_contract -> "fence"

let pp_outcome ppf (ok, predicted) =
  Format.fprintf ppf "%-10s"
    (match (ok, predicted) with
    | true, true -> "pass"
    | false, false -> "VIOLATED*"  (* * = predicted *)
    | false, true -> "VIOLATED!"
    | true, false -> "pass!?")

let pp_witness ppf w =
  Format.fprintf ppf "@,  %s witness: %s, %d-step schedule%s%s"
    (check_name w.w_check) w.w_program
    (List.length w.w_schedule)
    (match w.w_seed with
    | Some s -> Printf.sprintf " (seed %d)" s
    | None -> " (envelope)")
    (match (w.w_verified, w.w_path) with
    | Ok (), Some p -> Printf.sprintf ", verified v2 trace at %s" p
    | Ok (), None -> ", replay + round-trip verified"
    | Error e, _ -> Printf.sprintf ", VERIFICATION FAILED: %s" e)

let pp_verdict ppf v =
  Format.fprintf ppf "%-20s %-22s %a %a %5d+%d runs"
    v.v_name
    (Variant.to_spec (Model.variant v.v_model))
    pp_outcome (v.cond34_ok, v.predicted.p_cond34)
    pp_outcome (v.fence_ok, v.predicted.p_fence)
    v.cond34_runs v.fence_runs;
  (match v.cond34_witness with Some w -> pp_witness ppf w | None -> ());
  match v.fence_witness with Some w -> pp_witness ppf w | None -> ()

let pp ppf r =
  Format.pp_open_vbox ppf 0;
  Format.fprintf ppf
    "variant campaign: %d lattice points x %d programs x %d seeds"
    (List.length r.verdicts) (List.length programs) r.seeds;
  Format.fprintf ppf "@,%-20s %-22s %-10s %-10s@,"
    "variant" "spec" "cond-3.4" "fence";
  List.iter (fun v -> Format.fprintf ppf "%a@," pp_verdict v) r.verdicts;
  Format.fprintf ppf "(VIOLATED* = violation predicted by the lattice theory)";
  Format.fprintf ppf "@,verdicts %s predictions"
    (if r.as_predicted then "match" else "DIVERGE FROM");
  Format.pp_close_box ppf ()

let exit_code r = if r.as_predicted then 0 else 1
