(** Candidate-directed triage: bounded dynamic verification of the
    static analyzer's race candidates.

    The static checker ({!Staticcheck.Lint}) over-approximates: every
    candidate pair may or may not correspond to a real race.  Triage
    closes the loop by exploring the program's schedules with
    {!Dpor.explore}, directed toward each candidate, and classifies it:

    - {e CONFIRMED}: some execution exhibits an hb1 race between the
      candidate's two static sites.  A minimal witness schedule is kept;
      written out as a v2 trace file, [racedet analyze] replays it to a
      report containing the same race.
    - {e REFUTED}: the exploration was {e complete} within the bounds —
      every Mazurkiewicz trace of the program was covered — and no
      execution races on the pair.  Because DPOR covers every behaviour
      class (see DESIGN.md, "DPOR soundness"), this is a proof that the
      candidate is a false positive of the static analysis, for programs
      whose executions fit the step bound.
    - {e UNKNOWN}: a bound was hit (step budget truncated some schedule,
      or the schedule limit ran out) before either of the above.

    The search is directed, not restricted: the candidate's two
    processors are preferred at every node ([?prefer] of
    {!Dpor.explore}), so racy interleavings of the pair surface early,
    and the exploration stops at the first confirming execution. *)

type status = Confirmed | Refuted | Unknown

type witness = {
  schedule : Memsim.Exec.decision list;
      (** minimal confirming schedule: no proper prefix confirms *)
  exec : Memsim.Exec.t;  (** its replay (drained, truncation marked) *)
  analysis : Racedetect.Postmortem.analysis;
  race : Racedetect.Race.t;  (** the race matching the candidate *)
}

type verdict = {
  pair : Staticcheck.Candidates.pair;
  status : status;
  witness : witness option;  (** [Some] iff {!Confirmed} *)
  schedules : int;  (** schedules explored for this candidate *)
  complete : bool;  (** the exploration covered the whole space *)
}

type report = {
  program : Minilang.Ast.program;
  lint : Staticcheck.Lint.report;
  model : Memsim.Model.t;
  max_steps : int;
  limit : int;
  data : verdict list;  (** one per data candidate, lint order *)
  sync : verdict list;  (** sync-sync candidates; [] unless requested *)
}

val match_race :
  Staticcheck.Candidates.pair ->
  Racedetect.Postmortem.analysis ->
  Racedetect.Race.t option
(** The first race of the analysis whose two events contain operations
    matching the candidate's two accesses (either orientation): same
    processor, kind and class, address within the access's abstract
    address set and within the pair's conflict set, on a conflicting
    location of the race; labels must agree when both sides carry one. *)

val triage_pair :
  ?max_steps:int ->
  ?limit:int ->
  model:Memsim.Model.t ->
  (unit -> Memsim.Thread_intf.source) ->
  Staticcheck.Candidates.pair ->
  verdict
(** Triage one candidate.  Defaults: [max_steps] 400, [limit] 2_000
    schedules — small enough that spinning programs reach UNKNOWN
    quickly; loop-free litmus programs complete far below either bound.
    The witness schedule is minimized greedily: the shortest prefix of
    the confirming schedule whose replay (plus buffer drain) still
    exhibits the race. *)

val run :
  ?max_steps:int ->
  ?limit:int ->
  ?sync:bool ->
  ?jobs:int ->
  ?model:Memsim.Model.t ->
  Minilang.Ast.program ->
  report
(** Run the static analysis, then triage every data candidate (and the
    sync-sync ones when [sync] is true), fanned out over [jobs] domains
    ({!Engine.Parbatch.map}).  [model] defaults to SC: the paper defines
    data-race-freedom through the sequentially consistent executions
    (Definition 2.4), so SC verdicts are the canonical ones; weaker
    models explore the larger weak decision space. *)

val exit_code : report -> int
(** 2 when any data candidate is CONFIRMED; else 3 when any triaged
    candidate is UNKNOWN; else 0 (every data candidate refuted — or none
    existed). *)

val write_witness : string -> witness -> (unit, string) result
(** Write the witness trace to a file in the checksummed v2 format, then
    read the bytes back, decode and re-analyze them, and check a race
    with the same endpoints — (processor, sequence) of both events — and
    the same locations survives the round trip.  [Error] describes any
    mismatch; the file is left in place for inspection. *)

val pp : Format.formatter -> report -> unit
