(** Dynamic verification of a synthesized repair ({!Staticcheck.Repair}).

    Closes the static-repair loop with the dynamic side, in two parts:

    - {b candidate refutation}: every data candidate of the original
      program is triaged on the original under SC (the canonical
      verdict, Definition 2.4) and then re-triaged {e on the repaired
      program} under every canonical model that buffers writes (TSO,
      WO, RCsc — DRF0/DRF1 behave like WO/RCsc) plus the chosen model
      when it is a distinct buffering point.  A repair verifies when
      each former candidate is REFUTED everywhere: DPOR covered the
      repaired program's full schedule space and no execution races on
      the pair.  Promoted accesses carry a sync class, so a surviving
      race would still match the candidate only if the repair failed to
      reclassify it — class is part of {!Triage.match_race};

    - {b Condition 3.4}: the repaired program's SC executions are
      enumerated exhaustively and adversarial/uniform weak runs under
      the plan's model are checked SC-explainable
      ({!Racedetect.Condition.check}).  Skipped (not failed) when the
      SC space exceeds the enumeration budget — spinning programs. *)

type model_verdict = {
  mv_model : Memsim.Model.t;
  mv_status : Triage.status;
  mv_schedules : int;
}

type cand_check = {
  cc_index : int;  (** position in the original lint's data candidates *)
  cc_pair : Staticcheck.Candidates.pair;
  cc_before : Triage.status;  (** original program, SC *)
  cc_after : model_verdict list;  (** repaired program, per model *)
}

type cond34 =
  | Cond_pass of { weak_runs : int; sc_pool : int }
  | Cond_fail of string
  | Cond_skipped of string

type t = {
  plan : Staticcheck.Repair.t;
  models : Memsim.Model.t list;
  checks : cand_check list;
  cond34 : cond34;
}

val models_for : Memsim.Model.t -> Memsim.Model.t list
(** TSO, WO, RCsc, plus the given model when it is a buffering point
    not already behaviourally covered. *)

val run :
  ?max_steps:int ->
  ?limit:int ->
  ?seeds:int ->
  ?sc_limit:int ->
  ?jobs:int ->
  Staticcheck.Repair.t ->
  t
(** Defaults: [max_steps] 400 and [limit] 2000 per triage (as
    {!Triage.triage_pair}), [seeds] 16 weak runs for Condition 3.4,
    [sc_limit] 20_000 SC executions before the 3.4 check is skipped. *)

val verified : t -> bool
(** Every former candidate REFUTED under every model, the repaired
    program is statically DRF, and Condition 3.4 did not fail. *)

val exit_code : t -> int
(** 0 verified; 2 when a candidate survived on the repaired program or
    Condition 3.4 failed; 3 when inconclusive (an UNKNOWN verdict or a
    skipped 3.4 check stands between the repair and a proof). *)

val pp : Format.formatter -> t -> unit
