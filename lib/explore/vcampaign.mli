(** The hardware-variant differential campaign.

    Sweeps every interesting point of the {!Memsim.Variant} lattice —
    the six named models as canonical points plus the named off-lattice
    knob settings ({!Memsim.Variant.aliases}) — over the spin-free
    stock programs and a seed range, asserting per variant whether
    Condition 3.4 (the SC-prefix property of Theorem 3.5) is preserved
    and, separately, whether fences actually order buffered writes
    (the {e fence contract}: the fenced store-buffering litmus must
    exhibit only SC behaviours).

    Observed verdicts are compared against the lattice theory
    ({!Memsim.Variant.preserves_condition},
    {!Memsim.Variant.honors_fences}); every violating variant gets a
    greedily minimized breaking schedule emitted as a replayable v2
    witness trace and re-verified — byte-identical replay, codec round
    trip, identical re-analysis — following the triage witness
    discipline. *)

type check = Cond34 | Fence_contract

type witness = {
  w_check : check;
  w_program : string;  (** stock-program name *)
  w_seed : int option;  (** [None]: found by envelope enumeration *)
  w_schedule : Memsim.Exec.decision list;  (** minimized breaking prefix *)
  w_exec : Memsim.Exec.t;  (** its drained replay *)
  w_path : string option;  (** trace file, when a witness dir was given *)
  w_verified : (unit, string) result;
}

type prediction = { p_cond34 : bool; p_fence : bool }

type verdict = {
  v_name : string;
  v_model : Memsim.Model.t;
  predicted : prediction;
  cond34_ok : bool;
  fence_ok : bool;
  cond34_runs : int;
  fence_runs : int;  (** size of the fenced-litmus behaviour envelope *)
  cond34_witness : witness option;
  fence_witness : witness option;
}

type report = { verdicts : verdict list; seeds : int; as_predicted : bool }

val roster : (string * Memsim.Model.t) list
(** The lattice points under test: the six named models as canonical
    variants (under their lowercased names), then every
    {!Memsim.Variant.aliases} entry. *)

val programs : Minilang.Ast.program list
(** The spin-free stock programs swept by the campaign; their SC pools
    enumerate completely, so {!Racedetect.Condition.check} is exact. *)

val prefix_explainable : sc:Memsim.Exec.t list -> Memsim.Exec.t -> bool
(** [prefix_explainable ~sc e] holds when some complete SC execution
    extends [e]: per processor the issued operations match an SC prefix
    in identity and reads saw the same values.  Judges the truncated
    replays minimization produces, where
    {!Memsim.Exec.same_program_behaviour} (equal lengths) cannot; on
    complete executions the two coincide. *)

val replay :
  model:Memsim.Model.t ->
  (unit -> Memsim.Thread_intf.source) ->
  Memsim.Exec.decision list ->
  Memsim.Exec.t
(** Re-perform a schedule prefix on a fresh machine, mark it truncated
    if threads remain, drain, and return the resulting execution. *)

val minimize :
  model:Memsim.Model.t ->
  sc:Scpool.t ->
  require_racefree:bool ->
  (unit -> Memsim.Thread_intf.source) ->
  Memsim.Exec.decision list ->
  Memsim.Exec.decision list * Memsim.Exec.t
(** Greedy triage-style minimization: the shortest schedule prefix whose
    drained replay is still SC-inexplicable (and race-free, when
    [require_racefree]).  @raise Invalid_argument when the full schedule
    no longer violates. *)

val verify :
  model:Memsim.Model.t ->
  (unit -> Memsim.Thread_intf.source) ->
  ?path:string ->
  Memsim.Exec.decision list ->
  Memsim.Exec.t ->
  (unit, string) result
(** The witness discipline shared with {!Robustcheck}: re-performing the
    schedule must yield a byte-identical v2 trace, and the (optionally
    written) trace must decode and re-analyze identically. *)

val run :
  ?seeds:int -> ?jobs:int -> ?witness_dir:string -> unit -> report
(** Run the campaign: [seeds] (default 16) schedules per variant x
    program cell on the {!Engine.Parbatch} domain pool ([jobs] as
    there), plus the exact fence-contract envelope per variant.  When
    [witness_dir] is given (created if missing), each violation's
    witness trace is written to
    [<dir>/<variant>-<cond34|fence>.trace].  [as_predicted] in the
    result also requires every emitted witness to have verified. *)

val pp : Format.formatter -> report -> unit
(** The verdict table: one row per lattice point ([pass] /
    [VIOLATED*] where [*] marks a theory-predicted violation), witness
    lines beneath violating rows, and the prediction summary. *)

val exit_code : report -> int
(** [0] when every verdict matches its prediction and all witnesses
    verified, [1] otherwise. *)
