module Ast = Minilang.Ast
module Interp = Minilang.Interp
module Model = Memsim.Model
module Lint = Staticcheck.Lint
module Repair = Staticcheck.Repair

type model_verdict = {
  mv_model : Model.t;
  mv_status : Triage.status;
  mv_schedules : int;
}

type cand_check = {
  cc_index : int;
  cc_pair : Staticcheck.Candidates.pair;
  cc_before : Triage.status;
  cc_after : model_verdict list;
}

type cond34 =
  | Cond_pass of { weak_runs : int; sc_pool : int }
  | Cond_fail of string
  | Cond_skipped of string

type t = {
  plan : Repair.t;
  models : Model.t list;
  checks : cand_check list;
  cond34 : cond34;
}

let models_for (m : Model.t) =
  let canonical = [ Model.TSO; Model.WO; Model.RCsc ] in
  let covered m' =
    List.exists
      (fun c -> Memsim.Variant.equal (Model.variant c) (Model.variant m'))
      canonical
  in
  if Model.buffers_writes m && not (covered m) then canonical @ [ m ]
  else canonical

let run ?(max_steps = 400) ?(limit = 2_000) ?(seeds = 16) ?(sc_limit = 20_000)
    ?(jobs = 1) (plan : Repair.t) =
  let models = models_for plan.Repair.model in
  let original = plan.Repair.original and repaired = plan.Repair.repaired in
  let candidates = plan.Repair.lint0.Lint.data_candidates in
  (* one work item per (candidate, program, model); fan out together *)
  let work =
    List.concat
      (List.mapi
         (fun i pair ->
           (i, pair, `Before)
           :: List.map (fun m -> (i, pair, `After m)) models)
         candidates)
  in
  let results =
    Engine.Parbatch.map_list ~jobs
      (fun (i, pair, what) ->
        let prog, model =
          match what with
          | `Before -> (original, Model.SC)
          | `After m -> (repaired, m)
        in
        let v =
          Triage.triage_pair ~max_steps ~limit ~model
            (fun () -> Interp.source prog)
            pair
        in
        (i, what, v))
      work
  in
  let checks =
    List.mapi
      (fun i pair ->
        let mine = List.filter (fun (j, _, _) -> j = i) results in
        let before =
          match List.find_opt (fun (_, w, _) -> w = `Before) mine with
          | Some (_, _, v) -> v.Triage.status
          | None -> Triage.Unknown
        in
        let after =
          List.filter_map
            (fun (_, w, v) ->
              match w with
              | `After m ->
                Some
                  {
                    mv_model = m;
                    mv_status = v.Triage.status;
                    mv_schedules = v.Triage.schedules;
                  }
              | `Before -> None)
            mine
        in
        { cc_index = i; cc_pair = pair; cc_before = before; cc_after = after })
      candidates
  in
  (* Condition 3.4 on the repaired program under the plan's model *)
  let cond34 =
    match Scpool.build ~limit:sc_limit repaired with
    | Error msg -> Cond_skipped msg
    | Ok sc ->
      let pool = Scpool.executions sc in
      let verdicts =
        Engine.Parbatch.map_seeds ~jobs seeds (fun seed ->
            let sched =
              if seed mod 2 = 0 then Memsim.Sched.adversarial ~seed ()
              else Memsim.Sched.random ~seed
            in
            let e =
              Interp.run ~max_steps:20_000 ~model:plan.Repair.model ~sched
                repaired
            in
            (seed, Racedetect.Condition.check ~sc:pool e))
      in
      (match
         Array.to_list verdicts
         |> List.filter (fun (_, v) -> not v.Racedetect.Condition.holds)
       with
      | [] -> Cond_pass { weak_runs = seeds; sc_pool = List.length pool }
      | (seed, v) :: _ ->
        Cond_fail
          (Format.asprintf "seed %d: %a" seed Racedetect.Condition.pp_verdict v))
  in
  { plan; models; checks; cond34 }

let all_refuted t =
  List.for_all
    (fun c ->
      List.for_all (fun mv -> mv.mv_status = Triage.Refuted) c.cc_after)
    t.checks

let verified t =
  Repair.statically_drf t.plan
  && all_refuted t
  && match t.cond34 with Cond_fail _ -> false | _ -> true

let exit_code t =
  let failed =
    (not (Repair.statically_drf t.plan))
    || List.exists
         (fun c ->
           List.exists (fun mv -> mv.mv_status = Triage.Confirmed) c.cc_after)
         t.checks
    || (match t.cond34 with Cond_fail _ -> true | _ -> false)
  in
  if failed then 2
  else if
    List.exists
      (fun c ->
        List.exists (fun mv -> mv.mv_status = Triage.Unknown) c.cc_after)
      t.checks
    || (match t.cond34 with Cond_skipped _ -> true | _ -> false)
  then 3
  else 0

let status_str = function
  | Triage.Confirmed -> "CONFIRMED"
  | Triage.Refuted -> "REFUTED"
  | Triage.Unknown -> "UNKNOWN"

let pp ppf t =
  let p = t.plan.Repair.original in
  Format.fprintf ppf "@[<v>verify (repaired program, models %s):@,"
    (String.concat ", " (List.map Model.name t.models));
  if t.checks = [] then
    Format.fprintf ppf "  no data candidate to refute@,"
  else
    List.iter
      (fun c ->
        Format.fprintf ppf "  candidate %d [%s on the original under SC]: %a@,"
          c.cc_index (status_str c.cc_before) (Lint.pp_pair p) c.cc_pair;
        List.iter
          (fun mv ->
            Format.fprintf ppf "    %-5s -> %s (%d schedule(s))@,"
              (Model.name mv.mv_model) (status_str mv.mv_status)
              mv.mv_schedules)
          c.cc_after)
      t.checks;
  (match t.cond34 with
  | Cond_pass { weak_runs; sc_pool } ->
    Format.fprintf ppf
      "  Condition 3.4 under %s: pass (%d weak run(s) against a %d-execution \
       SC pool)@,"
      (Model.name t.plan.Repair.model) weak_runs sc_pool
  | Cond_fail msg ->
    Format.fprintf ppf "  Condition 3.4 under %s: FAIL — %s@,"
      (Model.name t.plan.Repair.model) msg
  | Cond_skipped msg ->
    Format.fprintf ppf "  Condition 3.4 under %s: skipped — %s@,"
      (Model.name t.plan.Repair.model) msg);
  (if verified t then Format.fprintf ppf "repair verified"
   else
     match exit_code t with
     | 3 -> Format.fprintf ppf "repair inconclusive (bounds hit)"
     | _ -> Format.fprintf ppf "REPAIR NOT VERIFIED");
  Format.fprintf ppf "@]"
