module Exec = Memsim.Exec
module Op = Memsim.Op
module Enumerate = Memsim.Enumerate
module Trace = Tracing.Trace
module Event = Tracing.Event

(* One enumerated SC pool, shared by Vcampaign, Repaircheck and
   Robustcheck.  The pool carries a memoised behaviour index so checking
   many executions against one pool does not re-hash the executions
   list each time:
   - complete runs are decided by a hash-set lookup of their full
     per-proc behaviour signature (threads are deterministic given the
     values their reads returned, so a complete run matching an SC
     prefix coincides with that SC run entirely);
   - truncated runs (the prefixes minimization produces) scan the
     signature-deduped pool with a per-proc prefix comparison. *)

(* per processor, per op: identity plus the value read (writes carry
   None — their values are not part of behaviour, §2.1) *)
type signature =
  ((Op.proc * int * Op.loc * Op.kind * Op.op_class) * Op.value option)
  array array

(* trace-granularity projection of one processor's event sequence: a
   computation event keeps only its read/write location sets (a v2 trace
   records no data values), a sync event keeps location, kind, class and
   the value transferred *)
type evsig =
  | Comp of int list * int list
  | Syncop of Op.loc * Op.kind * Op.op_class * Op.value

type t = {
  executions : Exec.t list;
  signatures : signature list;  (** deduped, for truncated-prefix scans *)
  complete : (signature, unit) Hashtbl.t;
  mutable traces : evsig array array list option;  (** lazy trace index *)
}

let signature_of (e : Exec.t) : signature =
  Array.map
    (Array.map (fun (o : Op.t) ->
         ( Op.identity o,
           if o.Op.kind = Op.Read then Some o.Op.value else None )))
    e.Exec.by_proc

let of_executions execs =
  let complete = Hashtbl.create 64 in
  let signatures =
    List.fold_left
      (fun acc e ->
        let s = signature_of e in
        if Hashtbl.mem complete s then acc
        else begin
          Hashtbl.add complete s ();
          s :: acc
        end)
      [] execs
  in
  { executions = execs; signatures = List.rev signatures; complete; traces = None }

let default_limit = 2_000_000

let build ?(limit = default_limit) (p : Minilang.Ast.program) =
  let r = Enumerate.explore ~limit (fun () -> Minilang.Interp.source p) in
  if not r.Enumerate.complete then
    Error
      (Printf.sprintf
         "SC enumeration incomplete after %d executions (spinning program?)"
         (List.length r.Enumerate.executions))
  else Ok (of_executions r.Enumerate.executions)

let build_exn ?limit (p : Minilang.Ast.program) =
  match build ?limit p with
  | Ok t -> t
  | Error _ ->
    invalid_arg
      (Printf.sprintf "Scpool: SC pool for %s did not enumerate completely"
         p.Minilang.Ast.name)

let executions t = t.executions
let size t = List.length t.signatures

(* -- prefix-aware SC-explainability ------------------------------------ *)

(* [Exec.same_program_behaviour] needs complete, equal-length runs, so it
   cannot judge the truncated replays minimization produces.  A partial
   execution is SC-prefix-explainable when some complete SC execution
   extends it: per processor, the operations issued so far match an SC
   prefix in identity, and reads saw the same values.  On complete
   executions this coincides with [same_program_behaviour]. *)
let sig_extends (es : signature) (ss : signature) =
  Array.length es = Array.length ss
  &&
  try
    Array.iteri
      (fun p ep ->
        let sp = ss.(p) in
        if Array.length ep > Array.length sp then raise Exit;
        Array.iteri (fun i o -> if o <> sp.(i) then raise Exit) ep)
      es;
    true
  with Exit -> false

let explainable t (e : Exec.t) =
  let s = signature_of e in
  if not e.Exec.truncated then Hashtbl.mem t.complete s
  else List.exists (sig_extends s) t.signatures

let prefix_explainable ~sc (e : Exec.t) =
  let es = signature_of e in
  List.exists (fun s -> sig_extends es (signature_of s)) sc

(* -- trace-granularity explainability ---------------------------------- *)

let evsig_of (ev : Event.t) =
  match ev.Event.body with
  | Event.Computation { reads; writes; _ } ->
    Comp (Graphlib.Bitset.elements reads, Graphlib.Bitset.elements writes)
  | Event.Sync { op; _ } ->
    Syncop (op.Op.loc, op.Op.kind, op.Op.cls, op.Op.value)

let trace_sig (tr : Trace.t) = Array.map (Array.map evsig_of) tr.Trace.by_proc

let trace_index t =
  match t.traces with
  | Some idx -> idx
  | None ->
    let idx =
      List.map (fun e -> trace_sig (Trace.of_execution e)) t.executions
    in
    t.traces <- Some idx;
    idx

(* a truncated trace's final computation event per processor may be a
   partial event — the run stopped mid-computation — so it only needs to
   be a sub-event (location subsets) of the SC counterpart *)
let ev_matches ~last (e : evsig) (s : evsig) =
  match (e, s) with
  | Syncop _, _ | _, Syncop _ -> e = s
  | Comp (er, ew), Comp (sr, sw) ->
    if last then
      List.for_all (fun l -> List.mem l sr) er
      && List.for_all (fun l -> List.mem l sw) ew
    else e = s

let trace_explainable t (tr : Trace.t) =
  let es = trace_sig tr in
  let extends ss =
    Array.length es = Array.length ss
    &&
    try
      Array.iteri
        (fun p ep ->
          let sp = ss.(p) in
          let ne = Array.length ep in
          if ne > Array.length sp then raise Exit;
          if (not tr.Trace.truncated) && ne < Array.length sp then raise Exit;
          Array.iteri
            (fun i e ->
              let last = tr.Trace.truncated && i = ne - 1 in
              if not (ev_matches ~last e sp.(i)) then raise Exit)
            ep)
        es;
      true
    with Exit -> false
  in
  List.exists extends (trace_index t)
