(** Enumerated SC execution pools with a memoised behaviour index.

    Deciding SC-explainability is the core primitive of Condition 3.4
    checking ({!Vcampaign}), repair verification ({!Repaircheck}) and
    robustness verification ({!Robustcheck}).  All three enumerate the
    complete SC behaviour pool of a program once and then test many weak
    executions against it; this module owns that pool and indexes it so
    a membership test does not re-walk the executions list:

    - a {e complete} weak run is explainable iff its full per-processor
      behaviour signature (operation identities plus the values reads
      returned) is in the pool's hash set — threads are deterministic
      given their read values, so a complete run matching an SC prefix
      coincides with that SC execution entirely;
    - a {e truncated} run (the prefixes minimization produces) scans the
      signature-deduped pool with a per-processor prefix comparison. *)

type t

val build : ?limit:int -> Minilang.Ast.program -> (t, string) result
(** Enumerate the program's complete SC pool (limit defaults to
    2,000,000 executions).  [Error msg] when enumeration hits the limit
    — the message reads ["SC enumeration incomplete after %d executions
    (spinning program?)"], suitable for verbatim display. *)

val build_exn : ?limit:int -> Minilang.Ast.program -> t
(** @raise Invalid_argument when the pool does not enumerate completely. *)

val of_executions : Memsim.Exec.t list -> t
(** Index a pre-enumerated pool (the executions are trusted to be the
    complete SC set). *)

val executions : t -> Memsim.Exec.t list
(** The raw pool, e.g. for {!Racedetect.Condition.check}'s [~sc]. *)

val size : t -> int
(** Number of distinct SC behaviours (signature-deduped), the count to
    report to users. *)

val explainable : t -> Memsim.Exec.t -> bool
(** Whether some complete SC execution extends the given (possibly
    truncated) execution: per processor the issued operations match an
    SC prefix in identity and reads saw the same values.  On complete
    executions this coincides with
    {!Memsim.Exec.same_program_behaviour} against some pool member. *)

val prefix_explainable : sc:Memsim.Exec.t list -> Memsim.Exec.t -> bool
(** List-based one-shot form of {!explainable} (no index reuse), kept
    for callers holding a raw pool list. *)

val trace_explainable : t -> Tracing.Trace.t -> bool
(** Explainability at trace granularity, for observed (possibly
    decoded) traces: per processor, the sequence of computation
    read/write location sets and sync operations (location, kind,
    class, value) must match those of one SC execution — exactly for a
    complete trace, as a prefix (final computation event allowed
    partial) for a truncated one.  A v2 trace records no data values,
    so this decides explainability of exactly the information the
    paper's traces carry. *)
