(** Stateless dynamic partial-order reduction over the machine's decision
    space.

    The naive enumerators ({!Memsim.Enumerate.explore} /
    [explore_weak]) visit every interleaving of every decision sequence —
    exponentially many even when most decisions commute.  This explorer
    visits at least one representative of every Mazurkiewicz trace
    (equivalence class of schedules under commutation of independent
    decisions) and prunes the rest with the classic combination of

    - {e persistent sets}, computed dynamically in the style of
      Flanagan–Godefroid DPOR: when a decision about to be executed
      conflicts with an earlier decision of another processor, a
      backtracking point is planted at that earlier state; and
    - {e sleep sets}: a decision already explored at a node is carried
      into the sibling subtrees and never re-executed until a dependent
      decision wakes it, eliminating the redundant second order of every
      independent pair.

    Two decisions are {e dependent} when they belong to the same
    processor (program order, buffer FIFO and forwarding tie them
    together) or when their memory footprints ({!Memsim.Machine.footprint})
    conflict — a common location at least one of them writes.  Because
    enabledness in the machine is a function of the deciding processor's
    own state alone, independent decisions commute at the state level,
    so every pruned schedule is Mazurkiewicz-equivalent to an explored
    one and yields the same per-processor operation sequences, the same
    reads-from, the same so1 — hence the same
    {!Memsim.Exec.same_program_behaviour} class and the same hb1 races
    (see DESIGN.md, "DPOR soundness").

    The interpreter state is not snapshotable (continuations), so like
    the naive enumerators the explorer replays each prefix from scratch;
    litmus programs are tiny and the quadratic replay cost is
    irrelevant. *)

type result = {
  executions : Memsim.Exec.t list;
      (** the maximal (or truncated) executions recorded, one per explored
          schedule, in exploration order *)
  complete : bool;
      (** false when the step budget or the schedule limit was hit *)
  schedules : int;  (** executions recorded = schedules fully explored *)
  sleep_blocked : int;
      (** explorations abandoned because every enabled decision was
          sleeping (redundant orders proven already covered) *)
  stopped : bool;  (** the [stop] predicate ended the search early *)
}

val explore :
  ?max_steps:int ->
  ?limit:int ->
  ?prefer:int list ->
  ?stop:(Memsim.Exec.t -> bool) ->
  model:Memsim.Model.t ->
  (unit -> Memsim.Thread_intf.source) ->
  result
(** [explore ~model mk] explores the decision space of [mk ()] under
    [model].  Defaults: [max_steps] 2000 (a schedule longer than this is
    truncated, drained, recorded, and marks the result incomplete),
    [limit] 500_000 recorded schedules.

    [prefer] biases the {e order} of exploration — decisions of the
    listed processors are tried first at every node — without affecting
    the set of schedules explored; a candidate-directed search lists the
    two processors of the candidate so schedules interleaving them come
    first.  [stop] is applied to every recorded execution; returning
    [true] ends the search immediately with [stopped = true]. *)

val behaviours_covered : Memsim.Exec.t list -> Memsim.Exec.t list -> bool
(** [behaviours_covered a b]: every behaviour class
    ({!Memsim.Exec.same_program_behaviour}) present in [a] is present in
    [b].  Test helper for the differential suites. *)
