module Ast = Minilang.Ast
module Interp = Minilang.Interp
module Exec = Memsim.Exec
module Model = Memsim.Model
module Variant = Memsim.Variant
module Robust = Staticcheck.Robust
module Absint = Staticcheck.Absint
module Delayset = Staticcheck.Delayset

(* Robustness verification, static-first:

   1. the static pass ({!Staticcheck.Robust}) classifies every critical
      cycle's feasibility under the variant — no feasible cycle and no
      coherence hazard proves ROBUST without running anything;
   2. programs with feasible cycles go to a candidate-directed DPOR
      closure: explore the weak-model decision space, preferring the
      processors on feasible cycles, stopping at the first execution the
      SC pool cannot explain.  That execution is greedily minimized and
      emitted as a replay-verified v2 witness — NOT-ROBUST;
   3. a complete, stop-free exploration proves ROBUST dynamically; a
      budget hit or an SC pool that does not enumerate is UNKNOWN. *)

type witness = {
  w_schedule : Exec.decision list;
  w_exec : Exec.t;
  w_path : string option;
  w_verified : (unit, string) result;
}

type verdict =
  | Robust_verdict of [ `Static | `Dynamic ]
  | Not_robust of witness
  | Unknown of string

type t = {
  program : Ast.program;
  model : Model.t;
  static_ : Robust.t;
  frontier : Robust.frontier_entry list;
  verdict : verdict;
  sc_behaviours : int;  (** distinct SC behaviours in the pool; 0 if unbuilt *)
  schedules : int;  (** weak schedules explored by the closure *)
}

(* bias exploration toward the processors that can actually realize a
   feasible cycle (or a bypass hazard) — the Triage discipline *)
let preferred_procs (s : Robust.t) =
  let ds = s.Robust.ds in
  let procs = Hashtbl.create 8 in
  List.iter
    (fun (cv : Robust.cycle_verdict) ->
      Array.iter
        (fun i ->
          Hashtbl.replace procs
            (Delayset.access ds i).Absint.proc ())
        cv.Robust.c_cycle)
    (Robust.feasible_cycles s);
  List.iter
    (fun (h : Robust.hazard) ->
      Hashtbl.replace procs (Delayset.access ds h.Robust.h_write).Absint.proc ())
    s.Robust.hazards;
  Hashtbl.fold (fun p () acc -> p :: acc) procs [] |> List.sort compare

let run ?(max_steps = 2_000) ?(limit = 100_000) ?(sc_limit = 100_000)
    ?witness_path ~model (p : Ast.program) =
  let variant = Model.variant model in
  let static_ = Robust.analyze variant p in
  let frontier = Robust.frontier static_.Robust.results static_.Robust.ds in
  let finish verdict ~sc_behaviours ~schedules =
    { program = p; model; static_; frontier; verdict; sc_behaviours; schedules }
  in
  if static_.Robust.robust then
    finish (Robust_verdict `Static) ~sc_behaviours:0 ~schedules:0
  else
    match Scpool.build ~limit:sc_limit p with
    | Error msg -> finish (Unknown msg) ~sc_behaviours:0 ~schedules:0
    | Ok pool ->
      let sc_behaviours = Scpool.size pool in
      let mk () = Interp.source p in
      let r =
        Dpor.explore ~max_steps ~limit
          ~prefer:(preferred_procs static_)
          ~stop:(fun e -> not (Scpool.explainable pool e))
          ~model mk
      in
      let schedules = r.Dpor.schedules in
      if r.Dpor.stopped then begin
        let bad = List.nth r.Dpor.executions (r.Dpor.schedules - 1) in
        let sched, min_exec =
          Vcampaign.minimize ~model ~sc:pool ~require_racefree:false mk
            bad.Exec.schedule
        in
        let verified =
          Vcampaign.verify ~model mk ?path:witness_path sched min_exec
        in
        finish
          (Not_robust
             {
               w_schedule = sched;
               w_exec = min_exec;
               w_path = witness_path;
               w_verified = verified;
             })
          ~sc_behaviours ~schedules
      end
      else if r.Dpor.complete then
        finish (Robust_verdict `Dynamic) ~sc_behaviours ~schedules
      else
        finish
          (Unknown
             (Printf.sprintf
                "exploration budget hit after %d schedule(s) with no non-SC \
                 execution found"
                schedules))
          ~sc_behaviours ~schedules

(* A witness must have verified for NOT-ROBUST to be trusted; treat a
   failed verification as an internal error (exit 1 via cmdliner). *)
let exit_code t =
  match t.verdict with
  | Robust_verdict _ -> 0
  | Not_robust w -> if w.w_verified = Ok () then 2 else 1
  | Unknown _ -> 3

(* -- rendering --------------------------------------------------------- *)

let verdict_str t =
  match t.verdict with
  | Robust_verdict `Static -> "ROBUST (static)"
  | Robust_verdict `Dynamic -> "ROBUST (dynamic)"
  | Not_robust _ -> "NOT ROBUST"
  | Unknown _ -> "UNKNOWN"

let pp_witness ppf w =
  Format.fprintf ppf
    "non-SC witness: %d-step schedule, %d operation(s) performed%s"
    (List.length w.w_schedule)
    (Exec.n_ops w.w_exec)
    (match (w.w_verified, w.w_path) with
    | Ok (), Some p -> Printf.sprintf ", verified v2 trace at %s" p
    | Ok (), None -> ", replay + round-trip verified"
    | Error e, _ -> Printf.sprintf ", VERIFICATION FAILED: %s" e)

let pp ?(explain = false) ppf t =
  Format.pp_open_vbox ppf 0;
  Format.fprintf ppf "robustness of %s under %s: %s@," t.program.Ast.name
    (Model.name t.model) (verdict_str t);
  if explain then Format.fprintf ppf "%a" Robust.pp_explain t.static_
  else Format.fprintf ppf "  %a@," Robust.pp t.static_;
  (match t.verdict with
  | Robust_verdict `Static -> ()
  | Robust_verdict `Dynamic ->
    Format.fprintf ppf
      "  dynamic closure: %d schedule(s) explored exhaustively, every \
       behaviour explained by the %d-behaviour SC pool@,"
      t.schedules t.sc_behaviours
  | Not_robust w ->
    Format.fprintf ppf "  dynamic closure: %d schedule(s) explored@,  %a@,"
      t.schedules pp_witness w
  | Unknown msg -> Format.fprintf ppf "  dynamic closure: %s@," msg);
  Format.fprintf ppf "%a" Robust.pp_frontier t.frontier;
  Format.pp_close_box ppf ()
