module Machine = Memsim.Machine
module Exec = Memsim.Exec
module Op = Memsim.Op

type result = {
  executions : Exec.t list;
  complete : bool;
  schedules : int;
  sleep_blocked : int;
  stopped : bool;
}

type footprint = (Op.loc * Op.kind) list

(* A frame of the exploration stack: the decision taken at a node, the
   memory and buffer footprints it had there, what was enabled at the
   node, and the node's backtracking set, which deeper race updates
   mutate. *)
type frame = {
  decision : Exec.decision;
  fproc : int;
  fp : footprint;
  lfp : Machine.buffer_footprint;
  enabled_at : Exec.decision list;
  backtrack : Exec.decision list ref;
}

let proc_of = function Exec.Issue p -> p | Exec.Retire (p, _) -> p

let conflicts fp1 fp2 =
  List.exists
    (fun (l1, k1) ->
      List.exists
        (fun (l2, k2) -> l1 = l2 && (k1 = Op.Write || k2 = Op.Write))
        fp2)
    fp1

(* Same-processor, cross-agent dependence through the private store
   buffer (see {!Machine.buffer_footprint}): a retire conflicts with a
   forwarded read of its location and with any decision whose
   enabledness needs the buffer drained. *)
let lconflicts a b =
  match (a, b) with
  | Machine.BWrites l, Machine.BReads l'
  | Machine.BReads l, Machine.BWrites l'
  | Machine.BWrites l, Machine.BAppends l'
  | Machine.BAppends l, Machine.BWrites l' ->
    l = l'
  | Machine.BWrites _, Machine.BAll | Machine.BAll, Machine.BWrites _ -> true
  | _ -> false

exception Done

let explore ?(max_steps = 2_000) ?(limit = 500_000) ?(prefer = []) ?stop
    ~model mk =
  let shape = mk () in
  let n_procs = shape.Memsim.Thread_intf.n_procs in
  let n_locs = shape.Memsim.Thread_intf.n_locs in
  let found = ref [] in
  let n_found = ref 0 in
  let complete = ref true in
  let sleep_blocked = ref 0 in
  let stopped = ref false in
  let order ds =
    match prefer with
    | [] -> ds
    | ps ->
      let pref, rest = List.partition (fun d -> List.mem (proc_of d) ps) ds in
      pref @ rest
  in
  let record m =
    let e = Machine.to_execution m in
    found := e :: !found;
    incr n_found;
    (match stop with
     | Some f when f e ->
       stopped := true;
       raise Done
     | _ -> ());
    if !n_found >= limit then begin
      complete := false;
      raise Done
    end
  in
  let replay sched =
    let m = Machine.create ~model (mk ()) in
    List.iter (Machine.perform m) sched;
    m
  in
  let sleeping sleep d = List.exists (fun (s, _) -> s = d) sleep in
  (* Each processor contributes up to two scheduling agents: its front
     end (issues) and its store buffer (retires).  Decisions of one
     agent are totally ordered by the machine; decisions of different
     agents are dependent when their memory footprints conflict or —
     same processor only — their buffer footprints do. *)
  let agent_of = function
    | Exec.Issue p -> p
    | Exec.Retire (p, _) -> n_procs + p
  in
  (* Plant backtracking points for [d] (footprints [fp]/[lfp]): at EVERY
     stack frame whose decision belongs to another agent and is
     dependent with [d], the race must also be explored in the reversed
     order.  Following Flanagan–Godefroid, the decisions planted at a
     racing frame are the possible first steps toward that reversal: for
     every agent with a transition after the frame that happens-before
     [d] (a chain of dependent transitions — same agent, or conflicting
     footprints), its first such transition, plus [d] itself when its
     agent took no step in between.  Each such first step was already
     enabled at the frame's node, because enabledness depends only on
     the deciding processor's own state and that processor's agents did
     nothing in between; planted decisions that were nonetheless not
     enabled there are filtered against the node's enabled set, falling
     back to planting the whole set.

     Two points where this is deliberately more generous than the
     textbook algorithm, both forced by the sleep sets: the whole first-
     step set is planted rather than one member, and every racing frame
     is processed rather than only the most recent.  A planted decision
     may be asleep at its target node — its subtree was explored from an
     ancestor, and with it the race discoveries that would have recursed
     from there — so the reversal must remain reachable through the other
     first steps and the older frames.  Planting at a node never
     re-executes a sleeping decision, so no schedule is explored twice;
     the extra entries only wake orders not yet proven redundant. *)
  let race_update path d fp lfp =
    let dproc = proc_of d in
    let dagent = agent_of d in
    (* the "related" set: transitions seen so far (newer than the scan
       point) that happen-before [d], summarized for O(1) dependence
       tests — per-location read/write bits for memory footprints,
       per-processor forwarding/retire bits for buffer footprints — plus
       each agent's earliest related transition: the candidate first
       steps *)
    let r_read = Array.make n_locs false in
    let r_write = Array.make n_locs false in
    let agent_first = Array.make (2 * n_procs) None in
    (* buffer-footprint summaries, per processor *)
    let fwd_read = Array.make (n_procs * n_locs) false in
    let appended = Array.make (n_procs * n_locs) false in
    let retired = Array.make (n_procs * n_locs) false in
    let retired_any = Array.make n_procs false in
    let all = Array.make n_procs false in
    let absorb decision gfp glfp =
      List.iter
        (fun (l, k) ->
          match k with
          | Op.Read -> r_read.(l) <- true
          | Op.Write -> r_write.(l) <- true)
        gfp;
      let p = proc_of decision in
      (match glfp with
      | Machine.BNone -> ()
      | Machine.BReads l -> fwd_read.((p * n_locs) + l) <- true
      | Machine.BAppends l -> appended.((p * n_locs) + l) <- true
      | Machine.BWrites l ->
        retired.((p * n_locs) + l) <- true;
        retired_any.(p) <- true
      | Machine.BAll -> all.(p) <- true);
      agent_first.(agent_of decision) <- Some decision
    in
    let touches_related gfp =
      List.exists
        (fun (l, k) ->
          match k with
          | Op.Write -> r_read.(l) || r_write.(l)
          | Op.Read -> r_write.(l))
        gfp
    in
    let touches_local p glfp =
      match glfp with
      | Machine.BNone -> false
      | Machine.BReads l -> retired.((p * n_locs) + l)
      | Machine.BAppends l -> retired.((p * n_locs) + l)
      | Machine.BWrites l ->
        fwd_read.((p * n_locs) + l)
        || appended.((p * n_locs) + l)
        || all.(p)
      | Machine.BAll -> retired_any.(p)
    in
    absorb d fp lfp;
    List.iter
      (fun g ->
        if
          agent_of g.decision <> dagent
          && (conflicts g.fp fp || (g.fproc = dproc && lconflicts g.lfp lfp))
        then begin
          let adds =
            Array.to_list agent_first
            |> List.filter_map Fun.id
            |> List.filter (fun c -> List.mem c g.enabled_at)
          in
          let adds = if adds = [] then g.enabled_at else adds in
          g.backtrack :=
            List.fold_left
              (fun acc e -> if List.mem e acc then acc else e :: acc)
              !(g.backtrack) adds
        end;
        if
          agent_first.(agent_of g.decision) <> None
          || touches_related g.fp
          || touches_local g.fproc g.lfp
        then absorb g.decision g.fp g.lfp)
      path
  in
  (* [path] is the stack, newest frame first; [sleep] the sleep set at the
     current node, each entry carrying the footprint it had when it went
     to sleep (stable: only same-processor decisions — which are
     dependent and therefore wake the sleeper — can change it). *)
  let rec explore_node path sleep depth =
    let sched = List.rev_map (fun f -> f.decision) path in
    let m = replay sched in
    match Machine.enabled m with
    | [] -> record m
    | enabled ->
      if depth >= max_steps then begin
        Machine.set_truncated m;
        Machine.force_drain m;
        complete := false;
        record m
      end
      else begin
        match order (List.filter (fun d -> not (sleeping sleep d)) enabled) with
        | [] ->
          (* every enabled decision is asleep: all continuations from here
             are Mazurkiewicz-equivalent to schedules explored already *)
          incr sleep_blocked
        | first :: _ ->
          let backtrack = ref [ first ] in
          let done_ = ref [] in
          let cur_sleep = ref sleep in
          let rec loop () =
            let todo =
              order
                (List.filter
                   (fun d ->
                     (not (List.mem d !done_))
                     && not (sleeping !cur_sleep d))
                   !backtrack)
            in
            match todo with
            | [] -> ()
            | d :: _ ->
              let probe = replay sched in
              let fp = Machine.footprint probe d in
              let lfp = Machine.buffer_footprint probe d in
              race_update path d fp lfp;
              let child_sleep =
                List.filter
                  (fun (s, sfp) ->
                    s <> d
                    && proc_of s <> proc_of d
                    && not (conflicts sfp fp))
                  !cur_sleep
              in
              let frame =
                { decision = d; fproc = proc_of d; fp; lfp;
                  enabled_at = enabled; backtrack }
              in
              explore_node (frame :: path) child_sleep (depth + 1);
              done_ := d :: !done_;
              cur_sleep := (d, fp) :: !cur_sleep;
              loop ()
          in
          loop ()
      end
  in
  (try explore_node [] [] 0 with Done -> ());
  {
    executions = List.rev !found;
    complete = !complete;
    schedules = !n_found;
    sleep_blocked = !sleep_blocked;
    stopped = !stopped;
  }

let behaviours_covered a b =
  List.for_all
    (fun ea -> List.exists (Exec.same_program_behaviour ea) b)
    a
