type t = {
  a : int;
  b : int;
  locs : Memsim.Op.loc list;
  is_data : bool;
}

(* ------------------------------------------------------------------ *)
(* Reference engine: quadratic per-location pair scan over the full
   vector-clock (or closure) index.  Kept verbatim as the differential
   baseline for the epoch engine — the property tests and the
   races-vclock bench rows run it — and as the fallback when hb1 is
   cyclic and no clock basis exists.                                   *)
(* ------------------------------------------------------------------ *)

let find_all_vector hb =
  let trace = Hb.trace hb in
  let events = trace.Tracing.Trace.events in
  let n_locs = trace.Tracing.Trace.n_locs in
  (* per-location occurrence index, so candidate generation is
     proportional to actual sharing rather than |events|² *)
  let writers = Array.make n_locs [] in
  let touchers = Array.make n_locs [] in
  Array.iter
    (fun (ev : Tracing.Event.t) ->
      let eid = ev.Tracing.Event.eid in
      Graphlib.Bitset.iter
        (fun l -> writers.(l) <- eid :: writers.(l); touchers.(l) <- eid :: touchers.(l))
        (Tracing.Event.writes ev ~n_locs);
      Graphlib.Bitset.iter
        (fun l -> touchers.(l) <- eid :: touchers.(l))
        (Tracing.Event.reads ev ~n_locs))
    events;
  (* a location's occurrence lists collect one entry per bitset the event
     touches it through, so an event reading and writing the same location
     appears twice in [touchers]; dedupe before the quadratic pair loop *)
  let n = Array.length events in
  for l = 0 to n_locs - 1 do
    writers.(l) <- List.sort_uniq compare writers.(l);
    touchers.(l) <- List.sort_uniq compare touchers.(l)
  done;
  let seen = Hashtbl.create 64 in
  let races = ref [] in
  Array.iteri
    (fun _l ws ->
      List.iter
        (fun w ->
          List.iter
            (fun o ->
              let a = min w o and b = max w o in
              let key = (a * n) + b in
              if a <> b && not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                let ea = events.(a) and eb = events.(b) in
                if
                  ea.Tracing.Event.proc <> eb.Tracing.Event.proc
                  && Tracing.Event.conflict ea eb
                  && not (Hb.ordered hb a b)
                then
                  races :=
                    {
                      a;
                      b;
                      locs = Tracing.Event.conflict_locs ea eb ~n_locs;
                      is_data =
                        Tracing.Event.involves_data ea || Tracing.Event.involves_data eb;
                    }
                    :: !races
              end)
            touchers.(_l))
        ws)
    writers;
  List.sort (fun r1 r2 -> compare (r1.a, r1.b) (r2.a, r2.b)) !races

(* ------------------------------------------------------------------ *)
(* Epoch-compressed engine (FastTrack adapted to events).

   Events are processed in hb1's topological order.  Per location the
   engine keeps:

   - [wr_ep]: the epoch of the last write.  While the location is
     "clean", all prior writes form an hb1 chain ending at that event,
     and every read older than the current read window is hb-before
     some event of that chain.
   - the read window — every read since the last write — as either a
     single epoch [rd_ep] (the window reads form an hb chain) or,
     after two concurrent reads, a promoted per-processor tick vector
     in the flat [rd_shared] table.

   A write checks [wr_ep] and the read window; a read checks [wr_ep];
   both in O(1) (O(P) once read-shared).  A passed check proves the
   event ordered after EVERY prior access of the location, by hb
   transitivity through the chains — clean locations never enumerate
   prior accesses at all.  The first failed check proves a race exists
   on the location but not with whom, so the location turns
   sticky-[dirty]: from then on events scan its exact per-location
   access tables (pre-sized int arrays) with full vector-clock
   comparisons, reproducing the reference engine's answers precisely.
   The final report is byte-identical to [find_all_vector]'s.          *)
(* ------------------------------------------------------------------ *)

let find_all_epoch hb clocks order =
  let trace = Hb.trace hb in
  let events = trace.Tracing.Trace.events in
  let n = Array.length events in
  let n_locs = trace.Tracing.Trace.n_locs in
  let n_procs = trace.Tracing.Trace.n_procs in
  if n = 0 || n_locs = 0 then []
  else begin
    (* pre-sized access tables: one counting pass, then a single flat
       arena per table with prefix-sum slice offsets — location l's
       writers live in wbuf.[woff l, wfill l), so setup allocates O(1)
       arrays of total size O(accesses + n_locs) instead of a sub-array
       per location (which dominates on wide, short traces) *)
    let woff = Array.make n_locs 0 in
    let toff = Array.make n_locs 0 in
    (* sync events carry a single (kind, loc) op: count and process them
       directly rather than through the allocating bitset views *)
    Array.iter
      (fun (ev : Tracing.Event.t) ->
        match ev.Tracing.Event.body with
        | Tracing.Event.Sync { op; _ } ->
          let l = op.Memsim.Op.loc in
          if op.Memsim.Op.kind = Memsim.Op.Write then woff.(l) <- woff.(l) + 1;
          toff.(l) <- toff.(l) + 1
        | Tracing.Event.Computation { reads; writes; _ } ->
          Graphlib.Bitset.iter
            (fun l -> woff.(l) <- woff.(l) + 1; toff.(l) <- toff.(l) + 1)
            writes;
          Graphlib.Bitset.iter (fun l -> toff.(l) <- toff.(l) + 1) reads)
      events;
    let wtotal = ref 0 and ttotal = ref 0 in
    for l = 0 to n_locs - 1 do
      let c = woff.(l) in
      woff.(l) <- !wtotal;
      wtotal := !wtotal + c;
      let c = toff.(l) in
      toff.(l) <- !ttotal;
      ttotal := !ttotal + c
    done;
    let wbuf = Array.make (max 1 !wtotal) 0 in
    let tbuf = Array.make (max 1 !ttotal) 0 in
    (* fill cursors double as slice ends: the live entries for l are
       wbuf.[woff l, wfill l) *)
    let wfill = Array.copy woff in
    let tfill = Array.copy toff in
    (* per-location epoch state *)
    let wr_ep = Array.make n_locs Epoch.none in
    let rd_ep = Array.make n_locs Epoch.none in
    (* the promoted-window table is n_locs*n_procs wide but only needed
       once two reads of one location run concurrently — allocate it on
       the first promotion so traces whose read windows stay chains
       (most of them) never pay for it *)
    let rd_shared = ref [||] in
    let rd_shared_table () =
      if Array.length !rd_shared = 0 then
        rd_shared := Array.make (n_locs * n_procs) 0;
      !rd_shared
    in
    let rd_is_shared = Bytes.make n_locs '\000' in
    let dirty = Bytes.make n_locs '\000' in
    (* per-event dedupe for the scan path: a pair is examined only while
       processing its topologically later endpoint, so a stamp valid for
       the current event suffices — no global hashtable *)
    let considered = Array.make n (-1) in
    (* flat copy of each event's processor, so the scan inner loop never
       chases the event record *)
    let proc_of =
      Array.map (fun (ev : Tracing.Event.t) -> ev.Tracing.Event.proc) events
    in
    let races = ref [] in
    let record u o =
      let a = min u o and b = max u o in
      let ea = events.(a) and eb = events.(b) in
      let locs =
        (* two sync events each touch one location; the scan only pairs
           them through a shared table entry, so that location is the
           whole conflict set — skip the bitset intersection *)
        match (ea.Tracing.Event.body, eb.Tracing.Event.body) with
        | Tracing.Event.Sync { op; _ }, Tracing.Event.Sync _ -> [ op.Memsim.Op.loc ]
        | _ -> Tracing.Event.conflict_locs ea eb ~n_locs
      in
      races :=
        {
          a;
          b;
          locs;
          is_data = Tracing.Event.involves_data ea || Tracing.Event.involves_data eb;
        }
        :: !races
    in
    let scan u c p buf lo hi =
      for i = lo to hi - 1 do
        let o = buf.(i) in
        if considered.(o) <> u then begin
          considered.(o) <- u;
          let po = proc_of.(o) in
          if po <> p && Vclock.get c po < Vclock.get clocks.(o) po then record u o
        end
      done
    in
    let read_window_covered l c =
      if Bytes.get rd_is_shared l <> '\000' then begin
        let t = !rd_shared in
        let base = l * n_procs in
        let ok = ref true in
        for q = 0 to n_procs - 1 do
          if t.(base + q) > Vclock.get c q then ok := false
        done;
        !ok
      end
      else Epoch.leq rd_ep.(l) c
    in
    let check_write u c p l =
      if Bytes.get dirty l <> '\000' then scan u c p tbuf toff.(l) tfill.(l)
      else if not (Epoch.leq wr_ep.(l) c && read_window_covered l c) then begin
        Bytes.set dirty l '\001';
        scan u c p tbuf toff.(l) tfill.(l)
      end
    in
    let check_read u c p l =
      if Bytes.get dirty l <> '\000' then scan u c p wbuf woff.(l) wfill.(l)
      else if not (Epoch.leq wr_ep.(l) c) then begin
        Bytes.set dirty l '\001';
        scan u c p wbuf woff.(l) wfill.(l)
      end
    in
    let update_write u c p l =
      wbuf.(wfill.(l)) <- u;
      wfill.(l) <- wfill.(l) + 1;
      tbuf.(tfill.(l)) <- u;
      tfill.(l) <- tfill.(l) + 1;
      if Bytes.get dirty l = '\000' then begin
        (* the write passed its checks, so it is ordered after the
           whole read window: the window resets behind it *)
        wr_ep.(l) <- Epoch.of_clock c p;
        rd_ep.(l) <- Epoch.none;
        Bytes.set rd_is_shared l '\000'
      end
    in
    let update_read u c p l =
      tbuf.(tfill.(l)) <- u;
      tfill.(l) <- tfill.(l) + 1;
      if Bytes.get dirty l = '\000' then begin
        if Bytes.get rd_is_shared l <> '\000' then
          (!rd_shared).((l * n_procs) + p) <- Vclock.get c p
        else if Epoch.leq rd_ep.(l) c then
          (* the window reads still form an hb chain; this read becomes
             its new head *)
          rd_ep.(l) <- Epoch.of_clock c p
        else begin
          (* two concurrent reads (benign — reads never race with
             reads): promote the window to a tick vector *)
          let t = rd_shared_table () in
          let base = l * n_procs in
          for q = 0 to n_procs - 1 do
            t.(base + q) <- 0
          done;
          t.(base + Epoch.proc rd_ep.(l)) <- Epoch.tick rd_ep.(l);
          t.(base + p) <- Vclock.get c p;
          Bytes.set rd_is_shared l '\001'
        end
      end
    in
    for i = 0 to n - 1 do
      let u = order.(i) in
      let ev = events.(u) in
      let p = ev.Tracing.Event.proc in
      let c = clocks.(u) in
      match ev.Tracing.Event.body with
      | Tracing.Event.Sync { op; _ } ->
        (* single-location fast path — no bitset views, no iteration *)
        let l = op.Memsim.Op.loc in
        if op.Memsim.Op.kind = Memsim.Op.Write then begin
          check_write u c p l;
          update_write u c p l
        end
        else begin
          check_read u c p l;
          update_read u c p l
        end
      | Tracing.Event.Computation { reads = r; writes = w; _ } ->
        (* checks before updates, so the event never sees itself *)
        Graphlib.Bitset.iter (fun l -> check_write u c p l) w;
        Graphlib.Bitset.iter
          (fun l -> if not (Graphlib.Bitset.mem w l) then check_read u c p l)
          r;
        Graphlib.Bitset.iter (fun l -> update_write u c p l) w;
        Graphlib.Bitset.iter
          (fun l -> if not (Graphlib.Bitset.mem w l) then update_read u c p l)
          r
    done;
    List.sort
      (fun r1 r2 ->
        let c = compare r1.a r2.a in
        if c <> 0 then c else compare r1.b r2.b)
      !races
  end

let find_all hb =
  match Hb.epoch_basis hb with
  | Some (clocks, order) -> find_all_epoch hb clocks order
  | None -> find_all_vector hb

let data_races = List.filter (fun r -> r.is_data)

let equal r1 r2 = r1.a = r2.a && r1.b = r2.b

let pp ppf r =
  Format.fprintf ppf "<E%d,E%d>%s@@{%a}" r.a r.b
    (if r.is_data then "" else "[sync]")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    r.locs
