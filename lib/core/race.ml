type t = {
  a : int;
  b : int;
  locs : Memsim.Op.loc list;
  is_data : bool;
}

let find_all hb =
  let trace = Hb.trace hb in
  let events = trace.Tracing.Trace.events in
  let n_locs = trace.Tracing.Trace.n_locs in
  (* per-location occurrence index, so candidate generation is
     proportional to actual sharing rather than |events|² *)
  let writers = Array.make n_locs [] in
  let touchers = Array.make n_locs [] in
  Array.iter
    (fun (ev : Tracing.Event.t) ->
      let eid = ev.Tracing.Event.eid in
      Graphlib.Bitset.iter
        (fun l -> writers.(l) <- eid :: writers.(l); touchers.(l) <- eid :: touchers.(l))
        (Tracing.Event.writes ev ~n_locs);
      Graphlib.Bitset.iter
        (fun l -> touchers.(l) <- eid :: touchers.(l))
        (Tracing.Event.reads ev ~n_locs))
    events;
  (* a location's occurrence lists collect one entry per bitset the event
     touches it through, so an event reading and writing the same location
     appears twice in [touchers]; dedupe before the quadratic pair loop *)
  let n = Array.length events in
  for l = 0 to n_locs - 1 do
    writers.(l) <- List.sort_uniq compare writers.(l);
    touchers.(l) <- List.sort_uniq compare touchers.(l)
  done;
  let seen = Hashtbl.create 64 in
  let races = ref [] in
  Array.iteri
    (fun _l ws ->
      List.iter
        (fun w ->
          List.iter
            (fun o ->
              let a = min w o and b = max w o in
              let key = (a * n) + b in
              if a <> b && not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                let ea = events.(a) and eb = events.(b) in
                if
                  ea.Tracing.Event.proc <> eb.Tracing.Event.proc
                  && Tracing.Event.conflict ea eb
                  && not (Hb.ordered hb a b)
                then
                  races :=
                    {
                      a;
                      b;
                      locs = Tracing.Event.conflict_locs ea eb ~n_locs;
                      is_data =
                        Tracing.Event.involves_data ea || Tracing.Event.involves_data eb;
                    }
                    :: !races
              end)
            touchers.(_l))
        ws)
    writers;
  List.sort (fun r1 r2 -> compare (r1.a, r1.b) (r2.a, r2.b)) !races

let data_races = List.filter (fun r -> r.is_data)

let equal r1 r2 = r1.a = r2.a && r1.b = r2.b

let pp ppf r =
  Format.fprintf ppf "<E%d,E%d>%s@@{%a}" r.a r.b
    (if r.is_data then "" else "[sync]")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    r.locs
