module Codec = Tracing.Codec
module Event = Tracing.Event
module Trace = Tracing.Trace
module Bitset = Graphlib.Bitset

exception Fail of string

let failf fmt = Printf.ksprintf (fun msg -> raise (Fail msg)) fmt

type stats = {
  total_events : int;
  peak_live : int;
  retired : int;
  forced_retired : int;
  surviving : int;
  races : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "events %d, peak live %d, retired %d (forced %d), surviving %d, races %d"
    s.total_events s.peak_live s.retired s.forced_retired s.surviving s.races

(* A processed event that is still a race candidate: its payload is
   resident, and [epoch] packs (proc, own hb1 clock component) — a later
   event [f] is ordered after it iff [Epoch.leq epoch C_f], one integer
   comparison against [f]'s clock. *)
type cand = { ev : Event.t; epoch : Epoch.t }

type t = {
  max_live : int option;
  tolerant : bool;
  mutable dropped : int; (* records rejected and discarded (tolerant mode) *)
  mutable model : string;
  mutable truncated : bool;
  mutable sizes : Codec.sizes option;
  mutable seen_any : bool;
  mutable ended : bool;
  mutable so1_complete : bool;
  (* dimensioned once the procs/locs/events header arrives *)
  mutable pending : Event.t Queue.t array; (* decoded, waiting on so1 info *)
  mutable pending_count : int;
  mutable frontier : Vclock.t array; (* clock of each proc's last processed event *)
  mutable minclock : int array;      (* pointwise min of the frontiers *)
  mutable arrival_seq : int array;
  mutable ev_proc : int array;       (* eid -> proc; -1 = not yet seen *)
  mutable ev_seq : int array;
  mutable processed : Bytes.t;
  mutable proc_eids : int list array; (* processed eids per proc, newest first *)
  mutable loc_writers : int list array;
  mutable loc_touchers : int list array;
  cands : (int, cand) Hashtbl.t;
  clocks : (int, Vclock.t) Hashtbl.t; (* processed events not yet clock-dominated *)
  so1_in : (int, int list) Hashtbl.t; (* acquire -> releases, newest first *)
  so1_known : (int, unit) Hashtbl.t;
  pinned : (int, Event.t) Hashtbl.t;
  fifo : int Queue.t; (* candidates in processing order, for --max-live *)
  mutable so1_list : (int * int) list;       (* newest first *)
  mutable sync_order : (int * int list) list;
  mutable races : Race.t list;
  mutable seen_events : int;
  mutable live : int; (* resident payloads: pending + candidates *)
  mutable peak_live : int;
  mutable retired : int;
  mutable forced : int;
}

let create ?max_live ?(tolerant = false) () =
  (match max_live with
   | Some k when k < 1 -> invalid_arg "Stream.create: max_live must be >= 1"
   | _ -> ());
  {
    max_live;
    tolerant;
    dropped = 0;
    model = "";
    truncated = false;
    sizes = None;
    seen_any = false;
    ended = false;
    so1_complete = false;
    pending = [||];
    pending_count = 0;
    frontier = [||];
    minclock = [||];
    arrival_seq = [||];
    ev_proc = [||];
    ev_seq = [||];
    processed = Bytes.empty;
    proc_eids = [||];
    loc_writers = [||];
    loc_touchers = [||];
    cands = Hashtbl.create 64;
    clocks = Hashtbl.create 64;
    so1_in = Hashtbl.create 16;
    so1_known = Hashtbl.create 16;
    pinned = Hashtbl.create 16;
    fifo = Queue.create ();
    so1_list = [];
    sync_order = [];
    races = [];
    seen_events = 0;
    live = 0;
    peak_live = 0;
    retired = 0;
    forced = 0;
  }

let saw_end t = t.ended
let seen_events t = t.seen_events
let live_events t = t.live

let sizes_exn t what =
  match t.sizes with
  | Some s -> s
  | None -> failf "%s before the procs/locs/events header" what

let is_processed t eid = Bytes.get t.processed eid <> '\000'

let rels_of t eid =
  match Hashtbl.find_opt t.so1_in eid with
  | Some l -> l
  | None -> []

let is_acquire (ev : Event.t) =
  match ev.Event.body with
  | Event.Sync { op; _ } -> op.Memsim.Op.cls = Memsim.Op.Acquire
  | _ -> false

(* An event is processable once its hb1 predecessors outside program
   order are settled: non-acquires immediately, acquires once their so1
   record (or unpaired marker, or end of input) has arrived and every
   incoming release has itself been processed. *)
let ready t (ev : Event.t) =
  if not (is_acquire ev) then true
  else if Hashtbl.mem t.so1_known ev.Event.eid || t.so1_complete then
    List.for_all (fun r -> is_processed t r) (rels_of t ev.Event.eid)
  else false

let clock_dominated c m =
  let n = Array.length m in
  let ok = ref true in
  for i = 0 to n - 1 do
    if Vclock.get c i > m.(i) then ok := false
  done;
  !ok

let update_minclock t (s : Codec.sizes) =
  let changed = ref false in
  for i = 0 to s.n_procs - 1 do
    let m = ref max_int in
    for p = 0 to s.n_procs - 1 do
      let v = Vclock.get t.frontier.(p) i in
      if v < !m then m := v
    done;
    if !m <> t.minclock.(i) then begin
      t.minclock.(i) <- !m;
      changed := true
    end
  done;
  !changed

let remove_from_loc_index t (ev : Event.t) =
  let s = sizes_exn t "location index update" in
  let eid = ev.Event.eid in
  Bitset.iter
    (fun l ->
      t.loc_writers.(l) <- List.filter (fun e -> e <> eid) t.loc_writers.(l);
      t.loc_touchers.(l) <- List.filter (fun e -> e <> eid) t.loc_touchers.(l))
    (Event.writes ev ~n_locs:s.n_locs);
  Bitset.iter
    (fun l -> t.loc_touchers.(l) <- List.filter (fun e -> e <> eid) t.loc_touchers.(l))
    (Event.reads ev ~n_locs:s.n_locs)

(* §5 event GC: once every processor's frontier clock dominates an
   event's clock, every future event is hb1-after it — it can neither
   race with anything to come nor contribute to a future so1 join, so
   both its payload and its clock are dropped. *)
let retire_dominated t =
  let doomed = ref [] in
  Hashtbl.iter
    (fun eid c -> if clock_dominated c t.minclock then doomed := eid :: !doomed)
    t.clocks;
  List.iter
    (fun eid ->
      Hashtbl.remove t.clocks eid;
      match Hashtbl.find_opt t.cands eid with
      | Some cand ->
        Hashtbl.remove t.cands eid;
        remove_from_loc_index t cand.ev;
        t.retired <- t.retired + 1;
        t.live <- t.live - 1
      | None -> () (* already force-retired; only the clock remained *))
    !doomed

(* --max-live degradation: evict the oldest candidates beyond the cap.
   Their payload and candidacy are dropped — a race against a later
   event in the stream is silently missed, which is the documented
   closure-on-window degradation — but their clocks are kept so hb1
   ordering stays exact. *)
let enforce_max_live t =
  match t.max_live with
  | None -> ()
  | Some k ->
    let continue = ref true in
    while !continue && Hashtbl.length t.cands > k do
      match Queue.take_opt t.fifo with
      | None -> continue := false
      | Some eid -> (
        match Hashtbl.find_opt t.cands eid with
        | None -> () (* retired since it was queued *)
        | Some cand ->
          Hashtbl.remove t.cands eid;
          remove_from_loc_index t cand.ev;
          t.forced <- t.forced + 1;
          t.live <- t.live - 1)
    done

let pin t (ev : Event.t) =
  if not (Hashtbl.mem t.pinned ev.Event.eid) then Hashtbl.add t.pinned ev.Event.eid ev

let process t (s : Codec.sizes) (ev : Event.t) =
  let eid = ev.Event.eid and p = ev.Event.proc in
  (* the event's hb1 clock: join of its po predecessor (the frontier)
     and its incoming releases, plus its own tick.  A release whose
     clock was retired is already dominated by the frontier, so the
     missing join is a no-op. *)
  let c = Vclock.copy t.frontier.(p) in
  List.iter
    (fun r ->
      match Hashtbl.find_opt t.clocks r with
      | Some rc -> Vclock.join_into c rc
      | None -> ())
    (rels_of t eid);
  Vclock.tick_into c p;
  t.frontier.(p) <- c;
  let epoch = Epoch.of_clock c p in
  (* race scan against the live candidates sharing a location *)
  let n_locs = s.n_locs in
  let considered = Hashtbl.create 8 in
  let check o_eid =
    if not (Hashtbl.mem considered o_eid) then begin
      Hashtbl.add considered o_eid ();
      match Hashtbl.find_opt t.cands o_eid with
      | None -> ()
      | Some cand ->
        if
          cand.ev.Event.proc <> p
          && Event.conflict cand.ev ev
          && not (Epoch.leq cand.epoch c)
        then begin
          let a = min o_eid eid and b = max o_eid eid in
          let ea, eb = if a = o_eid then (cand.ev, ev) else (ev, cand.ev) in
          t.races <-
            {
              Race.a;
              b;
              locs = Event.conflict_locs ea eb ~n_locs;
              is_data = Event.involves_data ea || Event.involves_data eb;
            }
            :: t.races;
          pin t cand.ev;
          pin t ev
        end
    end
  in
  let w = Event.writes ev ~n_locs and r = Event.reads ev ~n_locs in
  Bitset.iter (fun l -> List.iter check t.loc_touchers.(l)) w;
  Bitset.iter (fun l -> List.iter check t.loc_writers.(l)) r;
  (* publish as a live candidate *)
  Bitset.iter
    (fun l ->
      t.loc_writers.(l) <- eid :: t.loc_writers.(l);
      t.loc_touchers.(l) <- eid :: t.loc_touchers.(l))
    w;
  Bitset.iter (fun l -> t.loc_touchers.(l) <- eid :: t.loc_touchers.(l)) r;
  Hashtbl.replace t.cands eid { ev; epoch };
  Hashtbl.replace t.clocks eid c;
  Queue.add eid t.fifo;
  Bytes.set t.processed eid '\001';
  t.proc_eids.(p) <- eid :: t.proc_eids.(p);
  if update_minclock t s then retire_dominated t;
  enforce_max_live t

let drain t =
  match t.sizes with
  | None -> ()
  | Some s ->
    let progress = ref true in
    while !progress do
      progress := false;
      for p = 0 to s.n_procs - 1 do
        let q = t.pending.(p) in
        let go = ref true in
        while !go do
          match Queue.peek_opt q with
          | Some ev when ready t ev ->
            ignore (Queue.pop q);
            t.pending_count <- t.pending_count - 1;
            process t s ev;
            progress := true
          | _ -> go := false
        done
      done
    done

let bump_live t =
  t.live <- t.live + 1;
  if t.live > t.peak_live then t.peak_live <- t.live

let on_sizes t (s : Codec.sizes) =
  (match t.sizes with
   | Some _ -> failf "duplicate procs/locs/events header"
   | None -> ());
  t.sizes <- Some s;
  t.pending <- Array.init s.n_procs (fun _ -> Queue.create ());
  t.frontier <- Array.init s.n_procs (fun _ -> Vclock.make s.n_procs);
  t.minclock <- Array.make s.n_procs 0;
  t.arrival_seq <- Array.make s.n_procs min_int;
  t.ev_proc <- Array.make s.n_events (-1);
  t.ev_seq <- Array.make s.n_events 0;
  t.processed <- Bytes.make s.n_events '\000';
  t.proc_eids <- Array.make s.n_procs [];
  t.loc_writers <- Array.make s.n_locs [];
  t.loc_touchers <- Array.make s.n_locs []

let on_event t (ev : Event.t) =
  let s = sizes_exn t "event record" in
  let eid = ev.Event.eid and p = ev.Event.proc in
  if eid < 0 || eid >= s.n_events then failf "event id %d out of range" eid;
  if t.ev_proc.(eid) >= 0 then failf "duplicate event %d" eid;
  if ev.Event.seq <= t.arrival_seq.(p) then
    failf "event %d of processor %d arrived out of program order" eid p;
  t.arrival_seq.(p) <- ev.Event.seq;
  t.ev_proc.(eid) <- p;
  t.ev_seq.(eid) <- ev.Event.seq;
  t.seen_events <- t.seen_events + 1;
  Queue.add ev t.pending.(p);
  t.pending_count <- t.pending_count + 1;
  bump_live t;
  drain t

let on_so1 t release acquire =
  let s = sizes_exn t "so1 record" in
  if release < 0 || release >= s.n_events || acquire < 0 || acquire >= s.n_events then
    failf "so1 pair out of range";
  if is_processed t acquire then
    failf "so1 record for event %d after it was already processed" acquire;
  t.so1_list <- (release, acquire) :: t.so1_list;
  Hashtbl.replace t.so1_in acquire (release :: rels_of t acquire);
  Hashtbl.replace t.so1_known acquire ();
  drain t

let on_so1_unpaired t acquire =
  let s = sizes_exn t "so1 record" in
  if acquire < 0 || acquire >= s.n_events then failf "so1 acquire out of range";
  Hashtbl.replace t.so1_known acquire ();
  drain t

let on_end t n =
  let s = sizes_exn t "end record" in
  if n <> s.n_events then
    failf "end record announces %d events, header says %d" n s.n_events;
  if t.seen_events <> s.n_events then
    failf "end record after %d of %d events" t.seen_events s.n_events;
  t.ended <- true

let push t (r : Codec.record) =
  try
    (match r with
     | Codec.Mark _ ->
       (* v2 integrity framing, verified (or salvaged) at the codec
          layer; the final mark legitimately follows the end record *)
       ()
     | _ ->
       if t.ended then failf "record after the end marker";
       t.seen_any <- true;
       (match r with
        | Codec.Magic _ | Codec.Mark _ -> ()
        | Codec.Model m -> t.model <- m
        | Codec.Truncated b -> t.truncated <- b
        | Codec.Sizes s -> on_sizes t s
        | Codec.Event ev -> on_event t ev
        | Codec.So1 { release; acquire } -> on_so1 t release acquire
        | Codec.So1_unpaired a -> on_so1_unpaired t a
        | Codec.Sync_order (l, es) -> t.sync_order <- (l, es) :: t.sync_order
        | Codec.End n -> on_end t n));
    Ok ()
  with Fail msg ->
    if t.tolerant then begin
      (* every handler validates before it mutates, so a rejected record
         leaves the engine consistent; drop it, count it, carry on *)
      t.dropped <- t.dropped + 1;
      Ok ()
    end
    else Error msg

let stats_of t =
  {
    total_events = t.seen_events;
    peak_live = t.peak_live;
    retired = t.retired;
    forced_retired = t.forced;
    surviving = Hashtbl.length t.pinned;
    races = List.length t.races;
  }

(* Full-payload fallback for a cyclic hb1 (possible on weak executions,
   §3.1): no topological processing order exists, but as long as nothing
   has been retired every payload is still resident, so the exact batch
   pipeline runs on the reassembled trace. *)
let finish_cyclic t (s : Codec.sizes) =
  let events = Array.make s.n_events None in
  Hashtbl.iter (fun eid (cand : cand) -> events.(eid) <- Some cand.ev) t.cands;
  Array.iter
    (fun q -> Queue.iter (fun (ev : Event.t) -> events.(ev.Event.eid) <- Some ev) q)
    t.pending;
  let events =
    Array.mapi
      (fun eid ev ->
        match ev with
        | Some e -> e
        | None ->
          (* every id was counted before this path is taken, so a hole
             here means the engine's own bookkeeping went wrong — still
             report it as a decode error, never abort the process *)
          failf "event %d has no payload during the cyclic fallback" eid)
      events
  in
  let by_proc = Array.make s.n_procs [] in
  Array.iter (fun (e : Event.t) -> by_proc.(e.Event.proc) <- e :: by_proc.(e.Event.proc)) events;
  let by_proc =
    Array.map
      (fun evs ->
        let arr = Array.of_list (List.rev evs) in
        Array.sort (fun (a : Event.t) b -> compare a.Event.seq b.Event.seq) arr;
        arr)
      by_proc
  in
  let trace =
    {
      Trace.n_procs = s.n_procs;
      n_locs = s.n_locs;
      model = t.model;
      truncated = t.truncated;
      events;
      by_proc;
      so1 = List.rev t.so1_list;
      sync_order = List.rev t.sync_order;
    }
  in
  (Postmortem.analyze ~so1:`Recorded ~index:`Auto trace, stats_of t)

let finish t =
  try
    let s =
      match t.sizes with
      | Some s -> s
      | None ->
        (* the batch decoder accepts a sizes-less header as an empty
           trace; mirror it so both modes agree on degenerate input *)
        if t.seen_any then { Codec.n_procs = 0; n_locs = 0; n_events = 0 }
        else failf "empty trace"
    in
    t.so1_complete <- true;
    drain t;
    if t.seen_events < s.n_events then begin
      let missing = ref 0 in
      (try
         for eid = 0 to s.n_events - 1 do
           if t.ev_proc.(eid) < 0 then begin missing := eid; raise Exit end
         done
       with Exit -> ());
      failf "missing event %d (saw %d of %d)" !missing t.seen_events s.n_events
    end;
    if t.pending_count > 0 then begin
      if t.retired = 0 && t.forced = 0 then Ok (finish_cyclic t s)
      else
        failf
          "hb1 cycle encountered after %d events were retired; re-run without --stream"
          (t.retired + t.forced)
    end
    else begin
      (* Rebuild the hb1 graph over the full event-id skeleton so SCC
         component numbering — and with it the partition report — is
         identical to the batch pipeline's, while only the surviving
         racy events keep their payloads.  The report reads payloads at
         race endpoints only, so the dummies are never printed. *)
      let empty = Bitset.create s.n_locs in
      let dummy = Event.Computation { reads = empty; writes = empty; ops = [] } in
      let events =
        Array.init s.n_events (fun eid ->
            match Hashtbl.find_opt t.pinned eid with
            | Some ev -> ev
            | None ->
              { Event.eid; proc = t.ev_proc.(eid); seq = t.ev_seq.(eid); body = dummy })
      in
      let by_proc =
        Array.map
          (fun eids -> Array.of_list (List.rev_map (fun eid -> events.(eid)) eids))
          t.proc_eids
      in
      let trace =
        {
          Trace.n_procs = s.n_procs;
          n_locs = s.n_locs;
          model = t.model;
          truncated = t.truncated;
          events;
          by_proc;
          so1 = List.rev t.so1_list;
          sync_order = List.rev t.sync_order;
        }
      in
      let hb = Hb.build ~so1:`Recorded ~index:`Auto trace in
      let races =
        List.sort
          (fun (r1 : Race.t) (r2 : Race.t) -> compare (r1.Race.a, r1.Race.b) (r2.Race.a, r2.Race.b))
          t.races
      in
      let augmented = Augment.build hb races in
      let partitions = Partition.compute augmented in
      Ok
        ( { Postmortem.trace; hb; races; augmented; partitions; order = `Hb1;
            shb_extra = [] },
          stats_of t )
    end
  with Fail msg -> Error msg

(* -- degraded (salvaged) finish -------------------------------------- *)

(* Holes in each processor's surviving [seq] sequence.  Head and tail
   holes are already covered by the global missing-event count; interior
   holes localize the loss for the report. *)
let compute_gaps t (s : Codec.sizes) =
  let by = Array.make s.n_procs [] in
  for eid = s.n_events - 1 downto 0 do
    if t.ev_proc.(eid) >= 0 then
      by.(t.ev_proc.(eid)) <- t.ev_seq.(eid) :: by.(t.ev_proc.(eid))
  done;
  let gaps = ref [] in
  Array.iteri
    (fun p seqs ->
      let rec go = function
        | a :: (b :: _ as rest) ->
          if b > a + 1 then
            gaps :=
              { Postmortem.proc = p; after_seq = a; before_seq = b;
                missing = b - a - 1 }
              :: !gaps;
          go rest
        | _ -> ()
      in
      go (List.sort compare seqs))
    by;
  List.sort
    (fun (a : Postmortem.gap) b -> compare (a.proc, a.after_seq) (b.proc, b.after_seq))
    !gaps

(* End of salvaged input.  When nothing was actually lost this delegates
   to {!finish} — the report stays byte-identical to batch.  Otherwise it
   produces a [Degraded] verdict over the surviving events: so1 edges
   whose endpoint never arrived are dropped (an acquire must not wait
   forever for a lost release), lost event ids become isolated dummy
   nodes with {e no} hb1 edges at all, and the ordering index is forced
   to the reference closure — isolated nodes would corrupt the vector-
   clock index, which assigns ticks by processor.  Removing events and
   edges from hb1 can only enlarge the set of unordered conflicting
   pairs, so the degraded report may over-report races among survivors
   but never under-reports them. *)
let finish_salvaged t ~decode_losses =
  try
    let s =
      match t.sizes with
      | Some s -> s
      | None ->
        if t.seen_any then { Codec.n_procs = 0; n_locs = 0; n_events = 0 }
        else failf "empty trace"
    in
    (* drop so1 edges with a lost endpoint before the final drain *)
    let dropped_so1 = ref 0 in
    let so1_kept =
      List.filter
        (fun (r, a) ->
          if t.ev_proc.(r) < 0 || t.ev_proc.(a) < 0 then begin
            incr dropped_so1;
            false
          end
          else true)
        (List.rev t.so1_list)
    in
    if !dropped_so1 > 0 then begin
      let acquires = Hashtbl.fold (fun a _ acc -> a :: acc) t.so1_in [] in
      List.iter
        (fun a ->
          let rels = rels_of t a in
          let kept = List.filter (fun r -> t.ev_proc.(r) >= 0) rels in
          if List.length kept <> List.length rels then
            Hashtbl.replace t.so1_in a kept)
        acquires
    end;
    t.so1_complete <- true;
    drain t;
    let missing_events = ref 0 in
    for eid = 0 to s.n_events - 1 do
      if t.ev_proc.(eid) < 0 then incr missing_events
    done;
    let loss =
      {
        Postmortem.decode_losses;
        missing_events = !missing_events;
        gaps = compute_gaps t s;
        dropped_records = t.dropped;
        dropped_so1 = !dropped_so1;
      }
    in
    if not (Postmortem.lossy loss) then
      (* nothing was lost: the strict finish applies unchanged, and the
         report is byte-identical to the batch pipeline's *)
      (match finish t with
       | Ok (a, st) -> Ok (Postmortem.verdict a, st)
       | Error _ as e -> e)
    else begin
      let empty = Bitset.create s.n_locs in
      let dummy = Event.Computation { reads = empty; writes = empty; ops = [] } in
      let dummy_event eid =
        let proc = if t.ev_proc.(eid) >= 0 then t.ev_proc.(eid) else 0 in
        { Event.eid; proc; seq = t.ev_seq.(eid); body = dummy }
      in
      let sync_order =
        List.rev t.sync_order
        |> List.map (fun (l, es) -> (l, List.filter (fun e -> t.ev_proc.(e) >= 0) es))
      in
      let mk_trace events by_proc =
        {
          Trace.n_procs = s.n_procs;
          n_locs = s.n_locs;
          model = t.model;
          truncated = t.truncated;
          events;
          by_proc;
          so1 = so1_kept;
          sync_order;
        }
      in
      if t.pending_count > 0 then begin
        (* survivors form an hb1 cycle: no topological processing order.
           Mirror {!finish_cyclic} — with every payload still resident,
           run the batch pipeline over survivors plus isolated dummies. *)
        if t.retired > 0 || t.forced > 0 then
          failf
            "hb1 cycle among salvaged events after %d were retired; re-run without --stream"
            (t.retired + t.forced);
        let events = Array.make s.n_events None in
        Hashtbl.iter (fun eid (cand : cand) -> events.(eid) <- Some cand.ev) t.cands;
        Array.iter
          (fun q -> Queue.iter (fun (ev : Event.t) -> events.(ev.Event.eid) <- Some ev) q)
          t.pending;
        let events =
          Array.mapi
            (fun eid ev -> match ev with Some e -> e | None -> dummy_event eid)
            events
        in
        let by_proc = Array.make s.n_procs [] in
        Array.iter
          (fun (e : Event.t) ->
            if t.ev_proc.(e.Event.eid) >= 0 then
              by_proc.(e.Event.proc) <- e :: by_proc.(e.Event.proc))
          events;
        let by_proc =
          Array.map
            (fun evs ->
              let arr = Array.of_list (List.rev evs) in
              Array.sort
                (fun (a : Event.t) b -> compare a.Event.seq b.Event.seq)
                arr;
              arr)
            by_proc
        in
        let analysis =
          Postmortem.analyze ~so1:`Recorded ~index:`Closure (mk_trace events by_proc)
        in
        Ok (Postmortem.Degraded { analysis; loss }, stats_of t)
      end
      else begin
        (* skeleton rebuild, as in {!finish}, but lost ids are isolated
           dummies (absent from every by_proc row) and the index is the
           reference closure *)
        let events =
          Array.init s.n_events (fun eid ->
              match Hashtbl.find_opt t.pinned eid with
              | Some ev -> ev
              | None -> dummy_event eid)
        in
        let by_proc =
          Array.map
            (fun eids -> Array.of_list (List.rev_map (fun eid -> events.(eid)) eids))
            t.proc_eids
        in
        let trace = mk_trace events by_proc in
        let hb = Hb.build ~so1:`Recorded ~index:`Closure trace in
        let races =
          List.sort
            (fun (r1 : Race.t) (r2 : Race.t) ->
              compare (r1.Race.a, r1.Race.b) (r2.Race.a, r2.Race.b))
            t.races
        in
        let augmented = Augment.build hb races in
        let partitions = Partition.compute augmented in
        let analysis =
          { Postmortem.trace; hb; races; augmented; partitions; order = `Hb1;
            shb_extra = [] }
        in
        Ok (Postmortem.Degraded { analysis; loss }, stats_of t)
      end
    end
  with Fail msg -> Error msg

(* -- checkpoint / restore -------------------------------------------- *)

(* A checkpoint is one header line — magic, format version, kind token,
   payload length, payload CRC-32 — followed by the marshalled
   (engine, extra) pair.  The Marshal payload is untyped, so the header
   carries everything needed to refuse a file we would otherwise
   misread: a version bump (the [extra] shape changed), a kind mismatch
   (an [analyze --checkpoint] file fed to [serve --resume], whose
   [extra] has a different type), truncation, or corruption all come
   back as structured [Error]s naming the file.  The write goes through
   a temporary file and a rename, so a kill mid-write leaves either the
   previous checkpoint or a complete new one. *)
let ckpt_magic = "weakrace-ckpt"
let ckpt_version = 2

let valid_kind k =
  k <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = '_')
       k

let checkpoint ?(kind = "stream") path t ~extra =
  if not (valid_kind kind) then
    invalid_arg "Stream.checkpoint: kind must be a lowercase token";
  let payload = Marshal.to_string (t, extra) [] in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Printf.fprintf oc "%s %d %s %d %08x\n" ckpt_magic ckpt_version kind
       (String.length payload)
       (Tracing.Crc32.string payload);
     output_string oc payload
   with exn -> close_out_noerr oc; raise exn);
  close_out oc;
  Sys.rename tmp path

let restore ?(kind = "stream") path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | data ->
    (match String.index_opt data '\n' with
     | None -> Error (Printf.sprintf "%s: not a checkpoint file" path)
     | Some i ->
       let header = String.sub data 0 i in
       let payload = String.sub data (i + 1) (String.length data - i - 1) in
       (match String.split_on_char ' ' header with
        | [ "weakrace-ckpt"; "2"; k; len; crc ] ->
          if k <> kind then
            Error
              (Printf.sprintf "%s: checkpoint kind is %S, expected %S" path k kind)
          else
            (match int_of_string_opt len, int_of_string_opt ("0x" ^ crc) with
             | Some l, Some c ->
               if String.length payload < l then
                 Error
                   (Printf.sprintf "%s: checkpoint truncated (%d of %d payload bytes)"
                      path (String.length payload) l)
               else if String.length payload > l then
                 Error
                   (Printf.sprintf
                      "%s: checkpoint payload is %d bytes but the header announces %d"
                      path (String.length payload) l)
               else if Tracing.Crc32.string payload <> c then
                 Error (Printf.sprintf "%s: checkpoint checksum mismatch" path)
               else
                 (try Ok (Marshal.from_string payload 0)
                  with _ -> Error (Printf.sprintf "%s: corrupt checkpoint payload" path))
             | _ -> Error (Printf.sprintf "%s: not a checkpoint file" path))
        | "weakrace-ckpt" :: v :: _ when int_of_string_opt v <> None ->
          Error
            (Printf.sprintf
               "%s: unsupported checkpoint format version %s (this build writes %d)"
               path v ckpt_version)
        | _ -> Error (Printf.sprintf "%s: not a checkpoint file" path)))

let analyze_fold fold ?max_live () =
  let t = create ?max_live () in
  match fold ~init:() ~f:(fun () r -> push t r) with
  | Error _ as e -> e
  | Ok () -> finish t

let analyze_file ?chunk_size ?max_live path =
  analyze_fold (fun ~init ~f -> Codec.fold_file ?chunk_size path ~init ~f) ?max_live ()

let analyze_string ?chunk_size ?max_live text =
  analyze_fold (fun ~init ~f -> Codec.fold_string ?chunk_size text ~init ~f) ?max_live ()

let analyze_salvage_fold fold ?max_live () =
  let t = create ?max_live ~tolerant:true () in
  match fold ~init:() ~f:(fun () r -> push t r) with
  | Error _ as e -> e
  | Ok ((), losses) -> finish_salvaged t ~decode_losses:losses

let analyze_salvage_file ?chunk_size ?max_live path =
  analyze_salvage_fold
    (fun ~init ~f -> Codec.fold_salvage_file ?chunk_size path ~init ~f)
    ?max_live ()

let analyze_salvage_string ?chunk_size ?max_live text =
  analyze_salvage_fold
    (fun ~init ~f -> Codec.fold_salvage_string ?chunk_size text ~init ~f)
    ?max_live ()
