let default_loc_name l = Printf.sprintf "loc%d" l

let pp_event_ref ~(trace : Tracing.Trace.t) ppf eid =
  let ev = trace.Tracing.Trace.events.(eid) in
  match ev.Tracing.Event.body with
  | Tracing.Event.Sync { op; _ } ->
    Format.fprintf ppf "E%d(P%d %a%s)" eid ev.Tracing.Event.proc Memsim.Op.pp_class
      op.Memsim.Op.cls
      (match op.Memsim.Op.label with None -> "" | Some l -> " " ^ l)
  | Tracing.Event.Computation { ops; _ } ->
    let label =
      List.find_map (fun (o : Memsim.Op.t) -> o.Memsim.Op.label) ops
    in
    Format.fprintf ppf "E%d(P%d comp%s)" eid ev.Tracing.Event.proc
      (match label with None -> "" | Some l -> " " ^ l)

let pp_race ~loc_name ~trace ppf (r : Race.t) =
  Format.fprintf ppf "%a <-> %a on %a"
    (pp_event_ref ~trace) r.Race.a (pp_event_ref ~trace) r.Race.b
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf l -> Format.pp_print_string ppf (loc_name l)))
    r.Race.locs

let pp_partition ?(loc_name = default_loc_name) ~trace ppf (p : Partition.partition) =
  Format.fprintf ppf "@[<v 2>partition #%d (%d events, %d data races)" p.Partition.component
    (List.length p.Partition.events)
    (List.length p.Partition.races);
  List.iter (fun r -> Format.fprintf ppf "@,%a" (pp_race ~loc_name ~trace) r) p.Partition.races;
  Format.fprintf ppf "@]"

let pp_analysis_gen ?(loc_name = default_loc_name) ~degraded ppf
    (a : Postmortem.analysis) =
  let first = Postmortem.first_partitions a in
  let non_first = Partition.non_first_partitions a.Postmortem.partitions in
  let trace = a.Postmortem.trace in
  if first = [] then
    if degraded then
      Format.fprintf ppf
        "@[<v>No data races detected among the surviving events.@]"
    else
      Format.fprintf ppf
        "@[<v>No data races detected.@,\
         By Condition 3.4(1) the execution was sequentially consistent.@]"
  else begin
    Format.fprintf ppf
      "@[<v>%d data race(s) in %d first partition(s) — each contains at least@,\
       one race that also occurs in a sequentially consistent execution:@,"
      (List.length (Postmortem.reported_races a))
      (List.length first);
    List.iter (fun p -> Format.fprintf ppf "@,%a" (pp_partition ~loc_name ~trace) p) first;
    if non_first <> [] then begin
      Format.fprintf ppf
        "@,@,%d non-first partition(s) suppressed (their races may not occur@,\
         under sequential consistency):"
        (List.length non_first);
      List.iter
        (fun (p : Partition.partition) ->
          Format.fprintf ppf "@,  partition #%d: %d data race(s)" p.Partition.component
            (List.length p.Partition.races))
        non_first
    end;
    (match a.Postmortem.order with
     | `Hb1 -> ()
     | `Shb ->
       let extra = a.Postmortem.shb_extra in
       Format.fprintf ppf
         "@,@,SHB (hb1 + reads-from) predicts %d additional race(s) among the@,\
          suppressed partitions%s"
         (List.length extra)
         (if extra = [] then "." else ":");
       List.iter
         (fun r -> Format.fprintf ppf "@,  %a" (pp_race ~loc_name ~trace) r)
         extra);
    Format.fprintf ppf "@]"
  end

let pp_analysis ?loc_name ppf a = pp_analysis_gen ?loc_name ~degraded:false ppf a

let pp_analysis_degraded ?loc_name ppf a =
  pp_analysis_gen ?loc_name ~degraded:true ppf a

let to_string ?loc_name a = Format.asprintf "%a" (pp_analysis ?loc_name) a

let to_dot ?(loc_name = default_loc_name) (a : Postmortem.analysis) =
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let trace = a.Postmortem.trace in
  let hb_graph = Hb.graph a.Postmortem.hb in
  let first_events =
    List.concat_map
      (fun (p : Partition.partition) -> p.Partition.events)
      (Postmortem.first_partitions a)
  in
  let node_label (ev : Tracing.Event.t) =
    match ev.Tracing.Event.body with
    | Tracing.Event.Sync { op; _ } ->
      Printf.sprintf "%s %s %s"
        (Format.asprintf "%a" Memsim.Op.pp_class op.Memsim.Op.cls)
        (Format.asprintf "%a" Memsim.Op.pp_kind op.Memsim.Op.kind)
        (loc_name op.Memsim.Op.loc)
    | Tracing.Event.Computation { reads; writes; _ } ->
      let names s =
        Graphlib.Bitset.elements s |> List.map loc_name |> String.concat ","
      in
      Printf.sprintf "R{%s} W{%s}" (names reads) (names writes)
  in
  out "digraph augmented_hb1 {\n";
  out "  rankdir=TB; node [shape=box, fontsize=10];\n";
  Array.iteri
    (fun p evs ->
      out "  subgraph cluster_P%d {\n    label=\"P%d\";\n" p p;
      Array.iter
        (fun (ev : Tracing.Event.t) ->
          let fill =
            if List.mem ev.Tracing.Event.eid first_events then
              ", style=filled, fillcolor=lightyellow"
            else ""
          in
          out "    e%d [label=\"E%d: %s\"%s];\n" ev.Tracing.Event.eid
            ev.Tracing.Event.eid (node_label ev) fill)
        evs;
      out "  }\n")
    trace.Tracing.Trace.by_proc;
  (* po edges (within clusters) and so1 edges *)
  Array.iter
    (fun evs ->
      for i = 0 to Array.length evs - 2 do
        out "  e%d -> e%d;\n" evs.(i).Tracing.Event.eid evs.(i + 1).Tracing.Event.eid
      done)
    trace.Tracing.Trace.by_proc;
  List.iter
    (fun (rel, acq) ->
      if Graphlib.Digraph.mem_edge hb_graph rel acq then
        out "  e%d -> e%d [style=dashed, label=\"so1\"];\n" rel acq)
    trace.Tracing.Trace.so1;
  (* race edges, doubly directed *)
  List.iter
    (fun (r : Race.t) ->
      out "  e%d -> e%d [dir=both, color=red, penwidth=2%s];\n" r.Race.a r.Race.b
        (if r.Race.is_data then "" else ", style=dotted"))
    a.Postmortem.races;
  out "}\n";
  Buffer.contents buf
