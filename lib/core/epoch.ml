type t = int

let bits = 10
let max_procs = 1 lsl bits
let mask = max_procs - 1

(* [none] is the epoch (proc 0, tick 0): no event carries tick 0 (every
   clock ticks its own component before being read), and [leq] on it
   degenerates to [0 <= c.(0)], which always holds — exactly the
   "no prior access" semantics, with no branch on the hot path. *)
let none = 0

let is_none e = e = 0

let make ~proc ~tick =
  if proc < 0 || proc >= max_procs then invalid_arg "Epoch.make: proc out of range";
  if tick <= 0 then invalid_arg "Epoch.make: tick must be positive";
  (tick lsl bits) lor proc

let of_clock c p = (Vclock.get c p lsl bits) lor p

let proc e = e land mask
let tick e = e lsr bits

let leq e c = e lsr bits <= Vclock.get c (e land mask)

let pp ppf e =
  if is_none e then Format.pp_print_string ppf "_"
  else Format.fprintf ppf "%d@@P%d" (tick e) (proc e)
