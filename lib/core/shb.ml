type index =
  | Staged of { pre : Vclock.t array; full : Vclock.t array; pos : int array }
  | Closure of Graphlib.Reach.t

type t = {
  hb : Hb.t;
  rf : (int * int) list;
  index : index;
}

(* Canonical reads-from reconstruction: walk the hb1-consistent
   linearization tracking the last writer per location; every read
   (sync and data alike — footprints don't distinguish values) observes
   it.  An event that both reads and writes a location reads the
   previous writer, then becomes the writer itself. *)
let reconstruct_rf (trace : Tracing.Trace.t) order =
  let n_locs = trace.Tracing.Trace.n_locs in
  let last_writer = Array.make n_locs (-1) in
  let rf = ref [] in
  Array.iter
    (fun u ->
      let ev = trace.Tracing.Trace.events.(u) in
      Graphlib.Bitset.iter
        (fun l ->
          let w = last_writer.(l) in
          if w >= 0 then rf := (w, u) :: !rf)
        (Tracing.Event.reads ev ~n_locs);
      Graphlib.Bitset.iter
        (fun l -> last_writer.(l) <- u)
        (Tracing.Event.writes ev ~n_locs))
    order;
  List.rev !rf

(* One forward pass computing both clock arrays.  [full.(u)] joins every
   shb predecessor (po, so1, rf); [pre.(u)] joins only the po/so1
   predecessors — [u]'s clock before its own incoming rf edges, the
   "check happens before the rf join" stage.  rf edges point forward in
   [order], so the hb1 topological order serves the shb graph too. *)
let staged_clocks (trace : Tracing.Trace.t) g rf_succ order =
  let n = Array.length trace.Tracing.Trace.events in
  let n_procs = trace.Tracing.Trace.n_procs in
  let full = Array.init n (fun _ -> Vclock.make n_procs) in
  let pre = Array.init n (fun _ -> Vclock.make n_procs) in
  let pos = Array.make n 0 in
  Array.iteri
    (fun i u ->
      pos.(u) <- i;
      let p = trace.Tracing.Trace.events.(u).Tracing.Event.proc in
      (* po/so1 predecessors were joined into both arrays and an rf
         predecessor never carries a larger own-proc component than the
         po predecessor, so both own components agree before the tick *)
      Vclock.tick_into full.(u) p;
      Vclock.tick_into pre.(u) p;
      Graphlib.Digraph.iter_succ g u (fun v ->
          Vclock.join_into pre.(v) full.(u);
          Vclock.join_into full.(v) full.(u));
      List.iter (fun v -> Vclock.join_into full.(v) full.(u)) rf_succ.(u))
    order;
  (pre, full, pos)

let build hb =
  let trace = Hb.trace hb in
  match Hb.epoch_basis hb with
  | None ->
    (* cyclic hb1: no linearization, no rf; shb falls back to hb1's own
       closure, so every suppressed race counts as predicted *)
    { hb; rf = []; index = Closure (Hb.reach hb) }
  | Some (_, order) ->
    let rf = reconstruct_rf trace order in
    let rf_succ = Array.make (Array.length trace.Tracing.Trace.events) [] in
    List.iter (fun (w, r) -> rf_succ.(w) <- r :: rf_succ.(w)) rf;
    let pre, full, pos = staged_clocks trace (Hb.graph hb) rf_succ order in
    { hb; rf; index = Staged { pre; full; pos } }

let rf t = t.rf

let ordered t a b =
  a <> b
  &&
  match t.index with
  | Closure r -> Graphlib.Reach.reaches r a b || Graphlib.Reach.reaches r b a
  | Staged { pre; full; pos } ->
    (* the earlier event in the linearization is the only possible
       predecessor; the later one is checked with its pre-rf clock *)
    let x, y = if pos.(a) <= pos.(b) then (a, b) else (b, a) in
    let trace = Hb.trace t.hb in
    let px = trace.Tracing.Trace.events.(x).Tracing.Event.proc in
    Vclock.get pre.(y) px >= Vclock.get full.(x) px

let extra_races t partitions =
  Partition.non_first_partitions partitions
  |> List.concat_map (fun (p : Partition.partition) -> p.Partition.races)
  |> List.filter (fun (r : Race.t) -> not (ordered t r.Race.a r.Race.b))
  |> List.sort (fun (r1 : Race.t) (r2 : Race.t) ->
         compare (r1.Race.a, r1.Race.b) (r2.Race.a, r2.Race.b))

let pp ppf t =
  Format.fprintf ppf "@[<v>shb (%d rf edge%s%s)"
    (List.length t.rf)
    (if List.length t.rf = 1 then "" else "s")
    (match t.index with Staged _ -> "" | Closure _ -> ", closure fallback");
  List.iter (fun (w, r) -> Format.fprintf ppf "@,  rf E%d->E%d" w r) t.rf;
  Format.fprintf ppf "@]"
