(** Streaming bounded-memory race analysis.

    The batch pipeline ({!Postmortem.analyze}) holds every event of the
    trace in memory.  This engine consumes {!Tracing.Codec.record}s one
    at a time — from a chunked file read, a growing file, or a pipe —
    and keeps an event's payload resident only while the event can still
    matter:

    - Each processed event gets an hb1 vector clock (join of its program
      order predecessor and its incoming so1 releases, plus its own
      tick), so "unordered conflicting access" is an O(1) comparison
      against the live candidates indexed per location.
    - §5 event GC: once every processor's frontier clock dominates an
      event's clock, every future event is hb1-ordered after it; it can
      neither race with anything still to come nor contribute to a
      future so1 join, so its payload and clock are dropped.  The peak
      live-set size is reported in {!stats}.
    - Events that race are pinned; at {!finish} the hb1 graph is rebuilt
      over the full event-id {e skeleton} (integers, not payloads) and
      handed to the unchanged {!Augment}/{!Partition}/{!Report} stages.
      Because the rebuilt graph has exactly the batch pipeline's nodes
      and edge order, SCC numbering — and therefore the first-partition
      report — is byte-identical to batch analysis of the same file.

    Retirement only progresses when so1 records arrive before their
    acquires, i.e. on stream-ordered files ({!Tracing.Codec.encode_stream}).
    Batch-layout files (so1 trailing) are analyzed correctly but stall
    every acquire until end of input, so their peak live set approaches
    the trace size.

    On a weak execution hb1 may be cyclic (§3.1): no topological
    processing order exists.  If nothing has been retired yet the engine
    falls back to the exact batch pipeline on the fully-resident events;
    if retirement already happened it reports an error rather than guess. *)

type t

type stats = {
  total_events : int;
  peak_live : int;      (** max simultaneously resident event payloads *)
  retired : int;        (** §5 GC retirements *)
  forced_retired : int; (** [max_live] evictions (may hide races) *)
  surviving : int;      (** racy events pinned for the report *)
  races : int;
}

val create : ?max_live:int -> ?tolerant:bool -> unit -> t
(** [max_live] caps the number of live race candidates; beyond it the
    oldest candidates are evicted (payload dropped, hb1 clock kept, so
    ordering stays exact but races spanning more than the window may be
    missed — see [forced_retired]).

    [tolerant] (default false) makes {!push} drop-and-count a record the
    engine would otherwise reject (duplicate or out-of-order events, so1
    after its acquire was processed, records after the end marker)
    instead of failing.  Every handler validates before it mutates, so a
    dropped record leaves the engine consistent.  Used with the salvage
    decoder; the drop count feeds the {!finish_salvaged} loss summary. *)

val push : t -> Tracing.Codec.record -> (unit, string) result
(** Feed one record.  Errors (duplicate or out-of-order events, so1
    after its target was processed, records after the end marker) leave
    the engine unusable. *)

val saw_end : t -> bool
(** An ["end N"] record was consumed: the trace is complete.  Used by
    [--follow] to stop tailing. *)

val seen_events : t -> int

val live_events : t -> int
(** Resident event payloads right now (pending + live race candidates) —
    the engine's memory footprint in events.  The serve daemon sums this
    across sessions to enforce its global live-event budget. *)

val finish : t -> (Postmortem.analysis * stats, string) result
(** End of input: resolve acquires still waiting for so1 (batch-layout
    files), verify completeness, and run the partition/report stage.
    The [analysis] prints byte-identically to the batch analysis of the
    same file, but non-racy events carry placeholder payloads — use it
    for reporting, not for payload inspection. *)

val finish_salvaged :
  t -> decode_losses:Tracing.Codec.Salvage.loss list ->
  (Postmortem.verdict * stats, string) result
(** End of {e salvaged} input (engine created with [~tolerant:true], fed
    from {!Tracing.Codec.Salvage}).  If nothing was lost — no decode
    losses, no dropped records, no missing events — this is exactly
    {!finish} and the report is byte-identical to batch.  Otherwise the
    verdict is [Degraded]: so1 edges with a lost endpoint are dropped,
    lost event ids become isolated nodes with {e no} hb1 edges (so no
    ordering is ever invented through a gap; the index is forced to the
    reference closure because isolated nodes would corrupt the
    vector-clock index), and the loss summary records decode losses,
    missing events, per-processor sequence gaps, and dropped records and
    edges.  Removing events and edges can only enlarge the set of
    unordered conflicting pairs, so a degraded report may over-report
    races among survivors but never under-reports them — and race
    freedom is never claimed. *)

val checkpoint : ?kind:string -> string -> t -> extra:'a -> unit
(** Atomically persist the engine plus caller state [extra] (codec
    decoder, input offset, …) to a file: marshalled payload behind a
    header carrying the format version, a [kind] token (default
    ["stream"]; lowercase [a-z0-9_-]), the payload length and its
    CRC-32, written to a temporary file and renamed, so a crash
    mid-write never leaves a half checkpoint in place.  [extra] must be
    marshallable (no closures).  Distinct producers should use distinct
    kinds so each other's files are refused on {!restore} instead of
    being unmarshalled at the wrong type.

    @raise Invalid_argument if [kind] is not a valid token. *)

val restore : ?kind:string -> string -> (t * 'a, string) result
(** Load a {!checkpoint}.  Truncated, doctored, or torn files are
    rejected via the header CRC; files written by another format version
    or another [kind] (default ["stream"]) are refused with a structured
    error naming the file.  The caller must request the same [extra]
    type it saved — marshalling is untyped beyond the kind check, as
    usual. *)

val analyze_file :
  ?chunk_size:int -> ?max_live:int -> string ->
  (Postmortem.analysis * stats, string) result
(** {!Tracing.Codec.fold_file} → {!push} → {!finish}. *)

val analyze_string :
  ?chunk_size:int -> ?max_live:int -> string ->
  (Postmortem.analysis * stats, string) result

val analyze_salvage_file :
  ?chunk_size:int -> ?max_live:int -> string ->
  (Postmortem.verdict * stats, string) result
(** {!Tracing.Codec.fold_salvage_file} → tolerant {!push} →
    {!finish_salvaged}: never fails on damaged input short of an
    unsalvageable header. *)

val analyze_salvage_string :
  ?chunk_size:int -> ?max_live:int -> string ->
  (Postmortem.verdict * stats, string) result

val pp_stats : Format.formatter -> stats -> unit
