(** Races between events (Definition 2.4 lifted to events, §4.1).

    Two events race when they conflict — they access a common location and
    at least one writes it — and no hb1 path connects them in either
    direction.  The race is a {e data} race when at least one endpoint is
    a computation event.  A higher-level data race between computation
    events may stand for many lower-level data races between the
    operations inside them. *)

type t = {
  a : int;  (** smaller eid *)
  b : int;  (** larger eid *)
  locs : Memsim.Op.loc list;  (** conflicting locations, ascending *)
  is_data : bool;
}

val find_all : Hb.t -> t list
(** Every race of the execution, data and sync–sync alike, deduplicated
    and sorted by [(a, b)].  Events of the same processor never race
    (program order totally orders them).

    Runs the epoch-compressed engine (FastTrack-style, O(1) common-case
    checks via {!Epoch}) whenever the hb1 index exposes a clock basis
    ({!Hb.epoch_basis}); falls back to {!find_all_vector} on cyclic
    hb1.  Both engines return identical race lists. *)

val find_all_vector : Hb.t -> t list
(** The reference engine: per-location quadratic pair scan with a full
    ordering query per candidate pair.  The differential baseline the
    property tests compare {!find_all} against, and the [races-vclock]
    benchmark rows. *)

val data_races : t list -> t list

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
