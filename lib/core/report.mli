(** Human-readable reports of an analysis, in the spirit of the paper's
    Figure 3: the first partitions (what the programmer must look at) and
    the non-first partitions (suppressed as potentially
    non-sequentially-consistent artifacts). *)

val pp_analysis :
  ?loc_name:(int -> string) -> Format.formatter -> Postmortem.analysis -> unit

val pp_analysis_degraded :
  ?loc_name:(int -> string) -> Format.formatter -> Postmortem.analysis -> unit
(** Lossy-trace wording for a {!Postmortem.Degraded} verdict: when no
    races are found among the surviving events the Condition 3.4(1)
    sequential-consistency claim is {e not} made — a lossy trace can
    never certify race-freedom. *)

val pp_partition :
  ?loc_name:(int -> string) ->
  trace:Tracing.Trace.t ->
  Format.formatter ->
  Partition.partition ->
  unit

val to_string : ?loc_name:(int -> string) -> Postmortem.analysis -> string

val to_dot : ?loc_name:(int -> string) -> Postmortem.analysis -> string
(** Graphviz rendering of the augmented happens-before-1 graph G′ in the
    style of the paper's Figure 3: one cluster per processor, solid po
    edges, dashed so1 edges, bold red doubly-directed race edges, and
    first-partition events filled.  Render with [dot -Tpdf]. *)
