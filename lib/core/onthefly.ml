type report = { prev_op : int; cur_op : int; loc : Memsim.Op.loc }

type access = { op_id : int; proc : int; stamp : int; was_data : bool }

type loc_state = {
  mutable last_write : access option;
  last_reads : access option array;  (* per processor *)
  mutable rel_clock : Vclock.t;      (* clock of the last release to this location *)
  mutable rel_value : int option;    (* the value it wrote; None once overwritten *)
}

type t = {
  clocks : Vclock.t array;
  locs : loc_state array;
  seen : (int * int, unit) Hashtbl.t;
  mutable reports_rev : report list;
}

let create ~n_procs ~n_locs =
  {
    (* each processor's own component starts at 1 so that every stamp is
       positive and fresh accesses are never spuriously "covered" *)
    clocks = Array.init n_procs (fun p -> Vclock.tick (Vclock.make n_procs) p);
    locs =
      Array.init n_locs (fun _ ->
          {
            last_write = None;
            last_reads = Array.make n_procs None;
            rel_clock = Vclock.make n_procs;
            rel_value = None;
          });
    seen = Hashtbl.create 16;
    reports_rev = [];
  }

let observe t (o : Memsim.Op.t) =
  let fresh = ref [] in
  let report (prev : access) cur loc =
    let key = (min prev.op_id cur, max prev.op_id cur) in
    if not (Hashtbl.mem t.seen key) then begin
      Hashtbl.add t.seen key ();
      let r = { prev_op = prev.op_id; cur_op = cur; loc } in
      t.reports_rev <- r :: t.reports_rev;
      fresh := r :: !fresh
    end
  in
  let p = o.Memsim.Op.proc in
  let l = o.Memsim.Op.loc in
  let st = t.locs.(l) in
  let data = Memsim.Op.is_data o.Memsim.Op.cls in
  let unordered (prev : access) = prev.stamp > Vclock.get t.clocks.(p) prev.proc in
  (match o.Memsim.Op.kind with
   | Memsim.Op.Read ->
     (* pairing first: an acquire that returned the last release's value
        becomes ordered after it before any race check runs *)
     if o.Memsim.Op.cls = Memsim.Op.Acquire && st.rel_value = Some o.Memsim.Op.value
     then Vclock.join_into t.clocks.(p) st.rel_clock;
     (match st.last_write with
      | Some w when w.proc <> p && unordered w && (w.was_data || data) ->
        report w o.Memsim.Op.id l
      | Some _ | None -> ());
     st.last_reads.(p) <-
       Some { op_id = o.Memsim.Op.id; proc = p; stamp = Vclock.get t.clocks.(p) p;
              was_data = data }
   | Memsim.Op.Write ->
     (match st.last_write with
      | Some w when w.proc <> p && unordered w && (w.was_data || data) ->
        report w o.Memsim.Op.id l
      | Some _ | None -> ());
     Array.iter
       (function
         | Some (r : access) when r.proc <> p && unordered r && (r.was_data || data) ->
           report r o.Memsim.Op.id l
         | Some _ | None -> ())
       st.last_reads;
     let me =
       { op_id = o.Memsim.Op.id; proc = p; stamp = Vclock.get t.clocks.(p) p;
         was_data = data }
     in
     st.last_write <- Some me;
     (match o.Memsim.Op.cls with
      | Memsim.Op.Release ->
        (* publish a snapshot of the clock including this write, then
           advance in place so the processor's subsequent accesses are not
           covered by it — the snapshot is the only copy per release;
           joins and ticks no longer allocate *)
        st.rel_clock <- Vclock.copy t.clocks.(p);
        st.rel_value <- Some o.Memsim.Op.value;
        Vclock.tick_into t.clocks.(p) p
      | Memsim.Op.Data | Memsim.Op.Plain_sync | Memsim.Op.Acquire ->
        (* any other write destroys the pairing window (an acquire that
           reads it is not synchronizing with the old release) *)
        st.rel_value <- None));
  List.rev !fresh

let reports t = List.rev t.reports_rev

let detect (e : Memsim.Exec.t) =
  let t = create ~n_procs:e.Memsim.Exec.n_procs ~n_locs:e.Memsim.Exec.n_locs in
  Array.iter (fun o -> ignore (observe t o)) e.Memsim.Exec.ops;
  reports t

let race_pairs reports =
  List.map (fun r -> (min r.prev_op r.cur_op, max r.prev_op r.cur_op)) reports
  |> List.sort_uniq compare
