type report = { prev_op : int; cur_op : int; loc : Memsim.Op.loc }

(* Per-location access state lives in flat unboxed arrays: the epoch of
   the last write and of the last read per processor (packed (proc,
   stamp) ints, Epoch.none when absent), with the op id and data-ness of
   each access alongside.  The old [access option] records allocated on
   every access; the epoch tables never allocate after [create]. *)
type t = {
  clocks : Vclock.t array;
  wr_ep : Epoch.t array;          (* per loc: epoch of last write *)
  wr_op : int array;              (* ... its op id *)
  wr_data : Bytes.t;              (* ... whether it was a data access *)
  rd_ep : Epoch.t array;          (* per loc*proc: epoch of last read *)
  rd_op : int array;
  rd_data : Bytes.t;
  rel_clock : Vclock.t array;     (* per loc: clock of the last release *)
  rel_valid : Bytes.t;            (* ... whether its value is still live *)
  rel_value : int array;          (* ... the value it wrote *)
  n_procs : int;
  seen : (int * int, unit) Hashtbl.t;
  mutable reports_rev : report list;
}

let create ~n_procs ~n_locs =
  {
    (* each processor's own component starts at 1 so that every stamp is
       positive and fresh accesses are never spuriously "covered" *)
    clocks = Array.init n_procs (fun p -> Vclock.tick (Vclock.make n_procs) p);
    wr_ep = Array.make n_locs Epoch.none;
    wr_op = Array.make n_locs (-1);
    wr_data = Bytes.make n_locs '\000';
    rd_ep = Array.make (n_locs * n_procs) Epoch.none;
    rd_op = Array.make (n_locs * n_procs) (-1);
    rd_data = Bytes.make (n_locs * n_procs) '\000';
    rel_clock = Array.init n_locs (fun _ -> Vclock.make n_procs);
    rel_valid = Bytes.make n_locs '\000';
    rel_value = Array.make n_locs 0;
    n_procs;
    seen = Hashtbl.create 16;
    reports_rev = [];
  }

let observe t (o : Memsim.Op.t) =
  let fresh = ref [] in
  let report prev_op cur loc =
    let key = (min prev_op cur, max prev_op cur) in
    if not (Hashtbl.mem t.seen key) then begin
      Hashtbl.add t.seen key ();
      let r = { prev_op; cur_op = cur; loc } in
      t.reports_rev <- r :: t.reports_rev;
      fresh := r :: !fresh
    end
  in
  let p = o.Memsim.Op.proc in
  let l = o.Memsim.Op.loc in
  let data = Memsim.Op.is_data o.Memsim.Op.cls in
  let c = t.clocks.(p) in
  (* an access is unordered iff its epoch has not reached this
     processor's clock — the O(1) epoch check *)
  let write_races () =
    let w = t.wr_ep.(l) in
    (not (Epoch.is_none w))
    && Epoch.proc w <> p
    && (not (Epoch.leq w c))
    && (Bytes.get t.wr_data l <> '\000' || data)
  in
  (match o.Memsim.Op.kind with
   | Memsim.Op.Read ->
     (* pairing first: an acquire that returned the last release's value
        becomes ordered after it before any race check runs *)
     if
       o.Memsim.Op.cls = Memsim.Op.Acquire
       && Bytes.get t.rel_valid l <> '\000'
       && t.rel_value.(l) = o.Memsim.Op.value
     then Vclock.join_into c t.rel_clock.(l);
     if write_races () then report t.wr_op.(l) o.Memsim.Op.id l;
     let i = (l * t.n_procs) + p in
     t.rd_ep.(i) <- Epoch.make ~proc:p ~tick:(Vclock.get c p);
     t.rd_op.(i) <- o.Memsim.Op.id;
     Bytes.set t.rd_data i (if data then '\001' else '\000')
   | Memsim.Op.Write ->
     if write_races () then report t.wr_op.(l) o.Memsim.Op.id l;
     let base = l * t.n_procs in
     for q = 0 to t.n_procs - 1 do
       let r = t.rd_ep.(base + q) in
       if
         (not (Epoch.is_none r))
         && q <> p
         && (not (Epoch.leq r c))
         && (Bytes.get t.rd_data (base + q) <> '\000' || data)
       then report t.rd_op.(base + q) o.Memsim.Op.id l
     done;
     t.wr_ep.(l) <- Epoch.make ~proc:p ~tick:(Vclock.get c p);
     t.wr_op.(l) <- o.Memsim.Op.id;
     Bytes.set t.wr_data l (if data then '\001' else '\000');
     (match o.Memsim.Op.cls with
      | Memsim.Op.Release ->
        (* publish a snapshot of the clock including this write, then
           advance in place so the processor's subsequent accesses are
           not covered by it — the snapshot reuses the location's scratch
           buffer; joins, ticks, and snapshots no longer allocate *)
        Vclock.blit c t.rel_clock.(l);
        Bytes.set t.rel_valid l '\001';
        t.rel_value.(l) <- o.Memsim.Op.value;
        Vclock.tick_into c p
      | Memsim.Op.Data | Memsim.Op.Plain_sync | Memsim.Op.Acquire ->
        (* any other write destroys the pairing window (an acquire that
           reads it is not synchronizing with the old release) *)
        Bytes.set t.rel_valid l '\000'));
  List.rev !fresh

let reports t = List.rev t.reports_rev

let detect (e : Memsim.Exec.t) =
  let t = create ~n_procs:e.Memsim.Exec.n_procs ~n_locs:e.Memsim.Exec.n_locs in
  Array.iter (fun o -> ignore (observe t o)) e.Memsim.Exec.ops;
  reports t

let race_pairs reports =
  List.map (fun r -> (min r.prev_op r.cur_op, max r.prev_op r.cur_op)) reports
  |> List.sort_uniq compare
