(** The SHB partial order — [shb = (po ∪ so1 ∪ rf)+] — as an alternative
    reporting order next to hb1 (Mathur–Kini–Viswanathan, "What
    Happens-After the First Race?").

    hb1's first-partition discipline (§4.2) deliberately stops at races
    that are guaranteed to occur under sequential consistency; races in
    non-first partitions are suppressed because reordering could make
    them disappear.  SHB recovers some of them soundly: a pair that is
    unordered even when every reads-from edge of the observed execution
    is added to hb1 is racy in {e every} execution with this
    communication pattern, so it can be predicted beyond the first
    partitions without risking a false alarm of the kind the
    first-partition rule guards against.

    Event-level traces store read/write footprints but not values, so
    the reads-from relation is reconstructed conservatively from a
    canonical hb1-consistent linearization: walking events in the clock
    index's topological order, each read observes the latest preceding
    write to its location.  Reconstructed rf edges always point forward
    in that order, so the shb graph is acyclic whenever hb1 is and the
    same topological order indexes both.

    The staged check of the SHB paper — a read is compared against prior
    accesses {e before} acquiring its reads-from edge, so direct
    write→read communications are still reported as races — is realized
    with two clock arrays: [full] (all edges) and [pre] (the event's
    clock before its own incoming rf joins). *)

type t

val build : Hb.t -> t
(** Reconstruct rf and index shb over [hb]'s trace.  On cyclic hb1 (no
    clock basis) no rf edge is reconstructable and shb degenerates to
    hb1's closure — {!extra_races} then predicts every suppressed
    race, the conservative direction. *)

val rf : t -> (int * int) list
(** The reconstructed reads-from edges (writer eid, reader eid), in
    linearization order. *)

val ordered : t -> int -> int -> bool
(** Comparable under shb in either direction, with the staged read
    check applied to the later event. *)

val extra_races : t -> Partition.t -> Race.t list
(** The data races of the non-first partitions that remain unordered
    under shb: sound predictions beyond the hb1 first-partition report,
    sorted by [(a, b)].  Disjoint from {!Partition.reported_races} by
    construction, so the SHB race set strictly contains the hb1 set
    whenever this is non-empty. *)

val pp : Format.formatter -> t -> unit
