(** The happens-before-1 relation over trace events (Definition 2.3,
    lifted to events as in §4.1).

    [hb1 = (po ∪ so1)+]: program order within each processor, plus an edge
    from each release event to every acquire event it paired with.

    Ordering queries are answered from a vector-clock index built in one
    forward pass over the trace — O(n·P) space, O(1) per query — whenever
    hb1 is acyclic (every execution in practice).  On a weak execution hb1
    {e need not be a partial order} (§3.1): if a cycle is present the
    index falls back to the SCC-condensation bitset closure, which
    tolerates cycles by construction. *)

type t

val build :
  ?so1:[ `Recorded | `Reconstructed ] -> ?index:[ `Auto | `Closure ] -> Tracing.Trace.t -> t
(** [so1 = `Recorded] (default) uses the pairing the tracer logged;
    [`Reconstructed] rebuilds so1 from the per-location synchronization
    order, as a purely post-mortem analyzer must
    ({!Tracing.Trace.so1_reconstruct}).

    [index = `Auto] (default) uses the vector-clock index when hb1 is
    acyclic and the transitive closure otherwise; [`Closure] forces the
    closure — the reference implementation the property tests compare
    against. *)

val trace : t -> Tracing.Trace.t

val graph : t -> Graphlib.Digraph.t
(** One node per event ([eid]); po and so1 edges. *)

val uses_clocks : t -> bool
(** Whether ordering queries go through the vector-clock fast path. *)

val epoch_basis : t -> (Vclock.t array * int array) option
(** The per-event vector clocks and the topological order they were
    computed in — the inputs of the epoch-compressed race engine
    ({!Race.find_all}) and of the SHB index ({!Shb.build}).  [None] on
    the closure fallback (cyclic hb1 or [index = `Closure]).  Both
    arrays are owned by the index: treat them as read-only. *)

val reach : t -> Graphlib.Reach.t
(** The bitset transitive closure, computed on first use and cached.
    Ordering queries never need it on the vclock path; it exists for
    callers that want whole-graph reachability. *)

val happens_before : t -> int -> int -> bool
(** [happens_before t a b]: a path of po/so1 edges leads from event [a]
    to event [b].  Irreflexive on acyclic graphs; on a cyclic weak
    execution two events can "happen before" each other. *)

val ordered : t -> int -> int -> bool
(** Comparable in either direction.  Two distinct conflicting events race
    iff not ordered. *)
