(** Vector clocks over a fixed set of processors.

    The persistent operations ({!tick}, {!join}) return fresh clocks; the
    on-the-fly detector snapshots clocks into its per-location state, so
    sharing mutable arrays would be a correctness trap.  The in-place
    variants ({!tick_into}, {!join_into}) exist for hot loops that own
    their clock exclusively — a clock that has been published (e.g. via
    {!copy} into shared state) must never be mutated afterwards. *)

type t

val make : int -> t
(** All components zero. *)

val n_procs : t -> int

val get : t -> int -> int

val copy : t -> t
(** An independent snapshot; the only safe way to publish a clock that
    will keep being mutated in place. *)

val blit : t -> t -> unit
(** [blit src dst] overwrites [dst] with [src] in place — a {!copy} that
    reuses an existing buffer instead of allocating.  [dst] must be
    exclusively owned, of the same width, and must not alias [src]. *)

val tick : t -> int -> t
(** Increment one component (persistent). *)

val tick_into : t -> int -> unit
(** Increment one component in place.  Only on exclusively-owned clocks. *)

val join : t -> t -> t
(** Componentwise maximum (persistent). *)

val join_into : t -> t -> unit
(** [join_into dst src] folds [src] into [dst] in place; [src] is not
    modified.  [dst] must be exclusively owned and must not alias
    [src]. *)

val leq : t -> t -> bool
(** Pointwise ≤ — "happened before or equal". *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
