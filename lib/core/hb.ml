type index =
  | Clocks of { clocks : Vclock.t array; order : int array }
      (* acyclic hb1: per-event vector clock; ordering queries are an O(1)
         component comparison.  [order] is the topological order the
         clocks were computed in — the processing order of the
         epoch-compressed race engine, which must see events in an
         hb1-consistent sequence (eids are assigned per-processor block
         by the tracer and are NOT topological). *)
  | Closure of Graphlib.Reach.t
      (* cyclic hb1 (possible on weak executions, §3.1) or forced by the
         caller: SCC condensation + bitset transitive closure *)

type t = {
  trace : Tracing.Trace.t;
  graph : Graphlib.Digraph.t;
  index : index;
  mutable reach : Graphlib.Reach.t option;  (* cached; see [reach] *)
}

(* One forward pass in topological order: an event's clock is the join of
   its predecessors' clocks with its own processor component incremented.
   Event [a] then happens-before event [b] iff [b]'s clock has seen [a]'s
   increment of proc(a)'s component — a single integer comparison.  The
   po chains give the clocks width n_procs; so1 edges are the recorded
   release→acquire pairs.  Total cost O(n·P + m·P) time and O(n·P) space,
   replacing the O(n·m/64) time / O(n²/64) space bitset closure. *)
let clocks_of_graph (trace : Tracing.Trace.t) g order =
  let n = Graphlib.Digraph.n_nodes g in
  let n_procs = trace.Tracing.Trace.n_procs in
  let clocks = Array.init n (fun _ -> Vclock.make n_procs) in
  List.iter
    (fun u ->
      (* all predecessors of [u] are finalized, so joining forward from
         [u] after its own tick keeps every clock exclusively owned *)
      Vclock.tick_into clocks.(u) trace.Tracing.Trace.events.(u).Tracing.Event.proc;
      Graphlib.Digraph.iter_succ g u (fun v -> Vclock.join_into clocks.(v) clocks.(u)))
    order;
  clocks

let build ?(so1 = `Recorded) ?(index = `Auto) (trace : Tracing.Trace.t) =
  let n = Array.length trace.Tracing.Trace.events in
  let g = Graphlib.Digraph.create n in
  (* program order: consecutive events of each processor *)
  Array.iter
    (fun evs ->
      for i = 0 to Array.length evs - 2 do
        Graphlib.Digraph.add_edge g evs.(i).Tracing.Event.eid evs.(i + 1).Tracing.Event.eid
      done)
    trace.Tracing.Trace.by_proc;
  let pairs =
    match so1 with
    | `Recorded -> trace.Tracing.Trace.so1
    | `Reconstructed -> Tracing.Trace.so1_reconstruct trace
  in
  List.iter (fun (rel, acq) -> Graphlib.Digraph.add_edge g rel acq) pairs;
  match index with
  | `Closure ->
    let r = Graphlib.Reach.compute g in
    { trace; graph = g; index = Closure r; reach = Some r }
  | `Auto -> (
    match Graphlib.Digraph.topological_order g with
    | Some order ->
      let clocks = clocks_of_graph trace g order in
      { trace; graph = g;
        index = Clocks { clocks; order = Array.of_list order };
        reach = None }
    | None ->
      (* a cycle: vector clocks cannot represent mutual reachability *)
      let r = Graphlib.Reach.compute g in
      { trace; graph = g; index = Closure r; reach = Some r })

let trace t = t.trace
let graph t = t.graph

let uses_clocks t = match t.index with Clocks _ -> true | Closure _ -> false

let epoch_basis t =
  match t.index with
  | Clocks { clocks; order } -> Some (clocks, order)
  | Closure _ -> None

let reach t =
  match t.reach with
  | Some r -> r
  | None ->
    let r = Graphlib.Reach.compute t.graph in
    t.reach <- Some r;
    r

let happens_before t a b =
  a <> b
  &&
  match t.index with
  | Clocks { clocks; _ } ->
    let pa = t.trace.Tracing.Trace.events.(a).Tracing.Event.proc in
    Vclock.get clocks.(b) pa >= Vclock.get clocks.(a) pa
  | Closure r -> Graphlib.Reach.reaches r a b

let ordered t a b = happens_before t a b || happens_before t b a
