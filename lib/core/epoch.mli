(** Epoch-compressed clocks (FastTrack's @{i epochs}, adapted to the
    event-level analysis of §4).

    An epoch [(p, t)] names a single event: the one whose hb1
    vector-clock component for its own processor [p] is [t].  Where a
    full vector clock answers "is the current event ordered after
    {e every} access seen so far?" in O(P), an epoch answers the
    common-case question "is it ordered after {e the last} access?" in
    O(1) — one array read and one integer comparison, independent of the
    processor count.  The race engines keep epochs per variable and fall
    back to vector comparison only on the rare same-variable
    concurrent-access path.

    An epoch is one immediate integer ([tick lsl 10 lor proc]), so
    per-location epoch tables are flat unboxed [int] arrays with no
    allocation on the hot path. *)

type t = private int
(** A packed [(proc, tick)] pair.  Runs as an immediate integer:
    [Epoch.t array] is an unboxed int array. *)

val none : t
(** "No access yet."  [leq none c] holds for every clock, so a fresh
    location passes every check without a special case. *)

val is_none : t -> bool

val max_procs : int
(** Processor ids must be below this (1024); ticks get the remaining
    ~52 bits. *)

val make : proc:int -> tick:int -> t
(** [tick] must be positive (a zero tick would collide with {!none}) and
    [proc] below {!max_procs}; raises [Invalid_argument] otherwise. *)

val of_clock : Vclock.t -> int -> t
(** [of_clock c p] — the epoch of the event whose clock is [c] on
    processor [p]: [(p, c.(p))].  The clock's own component must already
    be ticked (positive). *)

val proc : t -> int
val tick : t -> int

val leq : t -> Vclock.t -> bool
(** [leq e c] — the event named by [e] happens before (or is) the event
    whose clock is [c]: [tick e <= c.(proc e)].  The O(1) common-case
    race check. *)

val pp : Format.formatter -> t -> unit
