type t = int array

let make n = Array.make n 0

let n_procs = Array.length

let get t p = t.(p)

let copy = Array.copy

let tick t p =
  let c = Array.copy t in
  c.(p) <- c.(p) + 1;
  c

let tick_into t p = t.(p) <- t.(p) + 1

let blit src dst = Array.blit src 0 dst 0 (Array.length src)

let join a b = Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let join_into dst src =
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let leq a b =
  let rec go i = i >= Array.length a || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "<%s>"
    (String.concat "," (Array.to_list (Array.map string_of_int t)))
