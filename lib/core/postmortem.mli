(** The end-to-end post-mortem pipeline of §4: trace → happens-before-1
    graph → races → augmented graph → partitions → first-partition
    report. *)

type order = [ `Hb1 | `Shb ]
(** The reporting partial order: [`Hb1] is the paper's first-partition
    discipline unchanged; [`Shb] additionally predicts the non-first
    races that stay unordered under shb = po ∪ so1 ∪ rf ({!Shb}).  SHB
    only ever {e adds} races on top of the hb1 report — the verdict,
    exit code, and first-partition section are identical under both. *)

type analysis = {
  trace : Tracing.Trace.t;
  hb : Hb.t;
  races : Race.t list;       (** every race, data and sync–sync *)
  augmented : Augment.t;
  partitions : Partition.t;
  order : order;             (** the reporting order this was run with *)
  shb_extra : Race.t list;
      (** [`Shb] only: suppressed data races that shb still leaves
          unordered, disjoint from {!reported_races}; [[]] under
          [`Hb1] *)
}

val analyze :
  ?so1:[ `Recorded | `Reconstructed ] ->
  ?index:[ `Auto | `Closure ] ->
  ?order:order ->
  Tracing.Trace.t ->
  analysis
(** [index] selects the hb1 ordering index ({!Hb.build}): the default
    [`Auto] answers race queries from the O(n·P) vector-clock index with
    no full-trace transitive closure on the hot path; [`Closure] forces
    the reference bitset closure.  [order] (default [`Hb1]) selects the
    reporting order; see {!order}. *)

val analyze_execution :
  ?so1:[ `Recorded | `Reconstructed ] ->
  ?index:[ `Auto | `Closure ] ->
  ?order:order ->
  Memsim.Exec.t ->
  analysis
(** Trace the execution ({!Tracing.Trace.of_execution}) and analyze. *)

val with_order : order -> analysis -> analysis
(** Re-derive the SHB extras of an existing analysis without re-running
    the pipeline — how the streaming driver applies [--order] to a
    verdict it already holds. *)

val data_races : analysis -> Race.t list

val first_partitions : analysis -> Partition.partition list

val reported_races : analysis -> Race.t list
(** What the tool shows the programmer: the data races of the first
    partitions only (§4.2). *)

val predicted_races : analysis -> Race.t list
(** {!reported_races} plus the SHB extras — everything the selected
    order predicts.  Equal to {!reported_races} under [`Hb1]; a
    superset under [`Shb]. *)

val race_free : analysis -> bool
(** Theorem 4.1 + Condition 3.4(1): no first partitions with data races
    means no data races occurred, and the execution was sequentially
    consistent. *)

(** {1 Degraded verdicts}

    §5 warns that a racy program can overwrite its own trace buffers.
    When the salvage decoder ({!Tracing.Codec.Salvage}) had to discard
    damaged regions, the analysis that follows is over the {e surviving}
    events only.  Removing events only removes hb1 edges, so the
    analysis can over-report races among survivors but never under-
    report them — yet nothing can be said about races involving the lost
    events themselves.  A lossy trace therefore never yields the
    race-free verdict: it is {!Degraded}, whatever the survivors say. *)

type gap = {
  proc : int;
  after_seq : int;   (** last surviving seq before the gap; -1 at head *)
  before_seq : int;  (** first surviving seq after the gap *)
  missing : int;     (** events of [proc] lost in between *)
}
(** A hole in one processor's event sequence, reconstructed from the
    per-processor [seq] numbers of the surviving events. *)

type loss = {
  decode_losses : Tracing.Codec.Salvage.loss list;
      (** byte/line regions the salvage decoder discarded *)
  missing_events : int;  (** event ids announced by the header but never decoded *)
  gaps : gap list;       (** per-processor sequence holes *)
  dropped_records : int; (** records rejected semantically in tolerant mode *)
  dropped_so1 : int;     (** so1 edges dropped because an endpoint is missing *)
}

val no_loss : loss
val lossy : loss -> bool

type verdict =
  | Race_free of analysis
  | Races of analysis
  | Degraded of { analysis : analysis; loss : loss }

val verdict : ?loss:loss -> analysis -> verdict
(** Classify an analysis: {!Degraded} whenever [loss] is {!lossy} —
    race-freedom is never claimed for a lossy trace — else by
    {!race_free}. *)

val verdict_analysis : verdict -> analysis

val verdict_map : (analysis -> analysis) -> verdict -> verdict
(** Rewrite the analysis inside a verdict (e.g. {!with_order}) without
    reclassifying it — SHB extras never change the verdict class. *)

val verdict_exit_code : verdict -> int
(** The [racedet] exit-code convention: 0 race-free, 2 races, 3
    degraded (1 is reserved for usage and I/O errors). *)

val pp_gap : Format.formatter -> gap -> unit
val pp_loss : Format.formatter -> loss -> unit
