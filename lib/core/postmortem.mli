(** The end-to-end post-mortem pipeline of §4: trace → happens-before-1
    graph → races → augmented graph → partitions → first-partition
    report. *)

type analysis = {
  trace : Tracing.Trace.t;
  hb : Hb.t;
  races : Race.t list;       (** every race, data and sync–sync *)
  augmented : Augment.t;
  partitions : Partition.t;
}

val analyze :
  ?so1:[ `Recorded | `Reconstructed ] ->
  ?index:[ `Auto | `Closure ] ->
  Tracing.Trace.t ->
  analysis
(** [index] selects the hb1 ordering index ({!Hb.build}): the default
    [`Auto] answers race queries from the O(n·P) vector-clock index with
    no full-trace transitive closure on the hot path; [`Closure] forces
    the reference bitset closure. *)

val analyze_execution :
  ?so1:[ `Recorded | `Reconstructed ] ->
  ?index:[ `Auto | `Closure ] ->
  Memsim.Exec.t ->
  analysis
(** Trace the execution ({!Tracing.Trace.of_execution}) and analyze. *)

val data_races : analysis -> Race.t list

val first_partitions : analysis -> Partition.partition list

val reported_races : analysis -> Race.t list
(** What the tool shows the programmer: the data races of the first
    partitions only (§4.2). *)

val race_free : analysis -> bool
(** Theorem 4.1 + Condition 3.4(1): no first partitions with data races
    means no data races occurred, and the execution was sequentially
    consistent. *)
