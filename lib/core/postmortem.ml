type analysis = {
  trace : Tracing.Trace.t;
  hb : Hb.t;
  races : Race.t list;
  augmented : Augment.t;
  partitions : Partition.t;
}

let analyze ?so1 ?index trace =
  let hb = Hb.build ?so1 ?index trace in
  let races = Race.find_all hb in
  let augmented = Augment.build hb races in
  let partitions = Partition.compute augmented in
  { trace; hb; races; augmented; partitions }

let analyze_execution ?so1 ?index e = analyze ?so1 ?index (Tracing.Trace.of_execution e)

let data_races a = Race.data_races a.races

let first_partitions a = Partition.first_partitions a.partitions

let reported_races a = Partition.reported_races a.partitions

let race_free a = first_partitions a = []
