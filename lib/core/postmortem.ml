type order = [ `Hb1 | `Shb ]

type analysis = {
  trace : Tracing.Trace.t;
  hb : Hb.t;
  races : Race.t list;
  augmented : Augment.t;
  partitions : Partition.t;
  order : order;
  shb_extra : Race.t list;
}

let shb_extra_of hb partitions = function
  | `Hb1 -> []
  | `Shb -> Shb.extra_races (Shb.build hb) partitions

let analyze ?so1 ?index ?(order = `Hb1) trace =
  let hb = Hb.build ?so1 ?index trace in
  let races = Race.find_all hb in
  let augmented = Augment.build hb races in
  let partitions = Partition.compute augmented in
  let shb_extra = shb_extra_of hb partitions order in
  { trace; hb; races; augmented; partitions; order; shb_extra }

let analyze_execution ?so1 ?index ?order e =
  analyze ?so1 ?index ?order (Tracing.Trace.of_execution e)

let with_order order a =
  { a with order; shb_extra = shb_extra_of a.hb a.partitions order }

let data_races a = Race.data_races a.races

let first_partitions a = Partition.first_partitions a.partitions

let reported_races a = Partition.reported_races a.partitions

let predicted_races a = reported_races a @ a.shb_extra

let race_free a = first_partitions a = []

(* -- degraded verdicts over lossy traces ----------------------------- *)

type gap = { proc : int; after_seq : int; before_seq : int; missing : int }

type loss = {
  decode_losses : Tracing.Codec.Salvage.loss list;
  missing_events : int;
  gaps : gap list;
  dropped_records : int;
  dropped_so1 : int;
}

let no_loss =
  { decode_losses = []; missing_events = 0; gaps = []; dropped_records = 0;
    dropped_so1 = 0 }

let lossy l =
  l.decode_losses <> [] || l.missing_events > 0 || l.gaps <> []
  || l.dropped_records > 0 || l.dropped_so1 > 0

type verdict =
  | Race_free of analysis
  | Races of analysis
  | Degraded of { analysis : analysis; loss : loss }

let verdict ?loss a =
  match loss with
  | Some l when lossy l -> Degraded { analysis = a; loss = l }
  | _ -> if race_free a then Race_free a else Races a

let verdict_analysis = function
  | Race_free a | Races a | Degraded { analysis = a; _ } -> a

let verdict_map f = function
  | Race_free a -> Race_free (f a)
  | Races a -> Races (f a)
  | Degraded { analysis; loss } -> Degraded { analysis = f analysis; loss }

let verdict_exit_code = function
  | Race_free _ -> 0
  | Races _ -> 2
  | Degraded _ -> 3

let pp_gap ppf g =
  if g.after_seq < 0 then
    Format.fprintf ppf "proc %d: %d event%s missing before seq %d" g.proc
      g.missing (if g.missing = 1 then "" else "s") g.before_seq
  else
    Format.fprintf ppf "proc %d: %d event%s missing between seq %d and seq %d"
      g.proc g.missing (if g.missing = 1 then "" else "s") g.after_seq
      g.before_seq

let pp_loss ppf l =
  Format.fprintf ppf "trace is lossy; analysis is degraded:";
  List.iter
    (fun d -> Format.fprintf ppf "@\n  decode: %a" Tracing.Codec.Salvage.pp_loss d)
    l.decode_losses;
  if l.missing_events > 0 then
    Format.fprintf ppf "@\n  %d event%s never decoded" l.missing_events
      (if l.missing_events = 1 then "" else "s");
  List.iter (fun g -> Format.fprintf ppf "@\n  gap: %a" pp_gap g) l.gaps;
  if l.dropped_records > 0 then
    Format.fprintf ppf "@\n  %d malformed or conflicting record%s dropped"
      l.dropped_records (if l.dropped_records = 1 then "" else "s");
  if l.dropped_so1 > 0 then
    Format.fprintf ppf "@\n  %d so1 edge%s dropped (endpoint missing)"
      l.dropped_so1 (if l.dropped_so1 = 1 then "" else "s");
  Format.fprintf ppf
    "@\nrace-freedom cannot be certified; races reported are among surviving events only"
