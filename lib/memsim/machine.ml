type buffered = { op_id : int; loc : Op.loc; value : Op.value }

type t = {
  model : Model.t;
  src : Thread_intf.source;
  mem : Op.value array;
  mem_writer : int array;           (* op id of last write to each loc; -1 initial *)
  buffers : buffered list array ref; (* oldest first, per proc *)
  mutable ops_rev : Op.t list;
  mutable n_ops : int;
  pindex : int array;
  rf : (int, int) Hashtbl.t;
  commit : (int, int) Hashtbl.t;
  mutable clock : int;
  mutable sched_rev : Exec.decision list;
  mutable truncated : bool;
  mutable n_steps : int;
  mutable st_retires : int;
  mutable st_max_buffer : int;
  mutable st_buffered : int;
  mutable st_delay : int;
  issue_time : (int, int) Hashtbl.t;  (* buffered write op id -> issue clock *)
  on_op : (Op.t -> unit) option;
}

type stats = {
  retires : int;
  max_buffer : int;
  buffered_writes : int;
  delay_total : int;
}

let create ?on_op ~model (src : Thread_intf.source) =
  let mem = Array.make src.n_locs 0 in
  List.iter (fun (l, v) -> mem.(l) <- v) src.init;
  {
    model;
    src;
    mem;
    mem_writer = Array.make src.n_locs (-1);
    buffers = ref (Array.make src.n_procs []);
    ops_rev = [];
    n_ops = 0;
    pindex = Array.make src.n_procs 0;
    rf = Hashtbl.create 64;
    commit = Hashtbl.create 64;
    clock = 0;
    sched_rev = [];
    truncated = false;
    n_steps = 0;
    st_retires = 0;
    st_max_buffer = 0;
    st_buffered = 0;
    st_delay = 0;
    issue_time = Hashtbl.create 32;
    on_op;
  }

let buffer t p = !(t.buffers).(p)
let set_buffer t p b = !(t.buffers).(p) <- b

let buffer_empty t p = buffer t p = []

let has_pending_write_to t p loc = List.exists (fun e -> e.loc = loc) (buffer t p)

(* The newest pending write of [p] to [loc], for read forwarding. *)
let forwardable t p loc =
  List.fold_left
    (fun acc e -> if e.loc = loc then Some e else acc)
    None (buffer t p)

let record_op t ~proc ~loc ~kind ~cls ~value ~label =
  let id = t.n_ops in
  let o =
    { Op.id; proc; pindex = t.pindex.(proc); loc; kind; cls; value; label }
  in
  t.pindex.(proc) <- t.pindex.(proc) + 1;
  t.ops_rev <- o :: t.ops_rev;
  t.n_ops <- t.n_ops + 1;
  (match t.on_op with Some f -> f o | None -> ());
  o

(* -- knob-driven issue rules for Custom variants ----------------------

   Named models go through the original per-model rules below; [Custom]
   variants through these.  The two must agree on the canonical lattice
   points — the qcheck differential suite compares them run for run. *)

(* [Drain] waits for an empty buffer; [Partial] only for pending writes
   to the operation's own location (fences name no location, so every
   pending write is theirs: Partial = Drain). *)
let drain_ok t p (d : Variant.drain) ~loc =
  match d with
  | Variant.Drain -> buffer_empty t p
  | Variant.Nop -> true
  | Variant.Partial -> (
    match loc with
    | Some l -> not (has_pending_write_to t p l)
    | None -> buffer_empty t p)

let variant_may_issue t p v (req : Thread_intf.request) =
  let drained cls ~loc =
    match (cls : Op.op_class) with
    | Op.Data -> true
    | _ -> drain_ok t p (Variant.drain_on v cls) ~loc
  in
  let slot_free () =
    match v.Variant.depth with
    | Variant.Unbounded -> true
    | Variant.Bounded n -> List.length (buffer t p) < n
  in
  match req with
  | Thread_intf.Read { cls; loc; _ } ->
    drained cls ~loc:(Some loc)
    && (match v.Variant.read with
       | Variant.Stall -> not (has_pending_write_to t p loc)
       | Variant.Forward | Variant.Bypass -> true)
  | Thread_intf.Write { cls; loc; _ } ->
    drained cls ~loc:(Some loc)
    &&
    if Variant.has_buffer v && cls = Op.Data then slot_free ()
    else not (has_pending_write_to t p loc)
  | Thread_intf.Rmw { rcls; wcls; loc; _ } ->
    drained rcls ~loc:(Some loc)
    && drained wcls ~loc:(Some loc)
    && not (has_pending_write_to t p loc)
  | Thread_intf.Fence _ -> drain_ok t p v.Variant.on_fence ~loc:None

let may_issue t p (req : Thread_intf.request) =
  match t.model with
  | Model.Custom v -> variant_may_issue t p v req
  | _ ->
    let drained cls = (not (Model.drains_on t.model cls)) || buffer_empty t p in
    (match req with
    | Thread_intf.Read { cls; _ } -> drained cls
    | Thread_intf.Write { cls; loc; _ } ->
      drained cls
      && (cls = Op.Data || not (has_pending_write_to t p loc))
    | Thread_intf.Rmw { rcls; wcls; loc; _ } ->
      drained rcls && drained wcls && not (has_pending_write_to t p loc)
    | Thread_intf.Fence _ -> buffer_empty t p)

let enabled t =
  let issues = ref [] in
  for p = t.src.n_procs - 1 downto 0 do
    match t.src.peek p with
    | None -> ()
    | Some req -> if may_issue t p req then issues := Exec.Issue p :: !issues
  done;
  let retires = ref [] in
  for p = t.src.n_procs - 1 downto 0 do
    if Model.fifo_buffer t.model then (
      (* TSO: only the oldest buffered write may retire *)
      match buffer t p with
      | e :: _ -> retires := Exec.Retire (p, e.loc) :: !retires
      | [] -> ())
    else begin
      let seen = Hashtbl.create 4 in
      List.iter
        (fun e ->
          if not (Hashtbl.mem seen e.loc) then begin
            Hashtbl.add seen e.loc ();
            retires := Exec.Retire (p, e.loc) :: !retires
          end)
        (buffer t p)
    end
  done;
  !issues @ List.rev !retires

(* Whether a read issued now would return a buffered value rather than
   consult memory.  Stall and Bypass variants always read memory (Stall
   is only enabled once no same-location write is pending; Bypass reads
   memory even when one is — that is its defect). *)
let reads_forward t p loc =
  (match t.model with
  | Model.Custom v -> v.Variant.read = Variant.Forward
  | _ -> true)
  && forwardable t p loc <> None

let footprint t d =
  match d with
  | Exec.Retire (_, loc) -> [ (loc, Op.Write) ]
  | Exec.Issue p -> (
    match t.src.peek p with
    | None -> []
    | Some (Thread_intf.Read { loc; _ }) ->
      (* a forwarded read returns the processor's own buffered value and
         never consults memory, so it commutes with everything remote *)
      if reads_forward t p loc then [] else [ (loc, Op.Read) ]
    | Some (Thread_intf.Write { loc; cls; _ }) ->
      if Model.buffers_writes t.model && cls = Op.Data then []
      else [ (loc, Op.Write) ]
    | Some (Thread_intf.Rmw { loc; _ }) -> [ (loc, Op.Read); (loc, Op.Write) ]
    | Some (Thread_intf.Fence _) -> [])

type buffer_footprint =
  | BNone
  | BReads of Op.loc
  | BAppends of Op.loc
  | BWrites of Op.loc
  | BAll

(* Custom variants widen the same-processor dependences the explorer
   must see:
   - a [Stall] read's enabledness flips when a same-location write
     retires, and a [Partial] drain waits on exactly those retires, so
     both are [BReads loc] even though neither touches the buffer's
     contents ([BReads l] conflicts with [BWrites l]);
   - a data write into a [Bounded] buffer is enabled only while a slot
     is free, so a retire of {e any} location can enable it: [BAll]
     (which conflicts with every [BWrites]);
   - a [Bypass] read and a [fence=nop] fence ignore the buffer
     entirely: [BNone]. *)
let variant_issue_buffer_footprint t p v (req : Thread_intf.request) =
  let worst a b =
    match (a, b) with
    | BAll, _ | _, BAll -> BAll
    | BReads l, BNone | BNone, BReads l -> BReads l
    | BReads l, BReads _ -> BReads l
    | x, BNone -> x
    | BNone, x -> x
    | x, _ -> x
  in
  let drain_dep cls ~loc =
    match (cls : Op.op_class) with
    | Op.Data -> BNone
    | _ -> (
      match Variant.drain_on v cls with
      | Variant.Drain -> BAll
      | Variant.Partial -> (
        match loc with Some l -> BReads l | None -> BAll)
      | Variant.Nop -> BNone)
  in
  match req with
  | Thread_intf.Read { cls; loc; _ } ->
    let policy_dep =
      match v.Variant.read with
      | Variant.Forward -> if forwardable t p loc <> None then BReads loc else BNone
      | Variant.Stall -> BReads loc
      | Variant.Bypass -> BNone
    in
    worst (drain_dep cls ~loc:(Some loc)) policy_dep
  | Thread_intf.Write { cls; loc; _ } ->
    if Variant.has_buffer v && cls = Op.Data then (
      match v.Variant.depth with
      | Variant.Unbounded -> BAppends loc
      | Variant.Bounded _ -> BAll)
    else BAll
  | Thread_intf.Rmw _ -> BAll
  | Thread_intf.Fence _ ->
    if Variant.has_buffer v && v.Variant.on_fence = Variant.Nop then BNone
    else BAll

let buffer_footprint t d =
  match d with
  | Exec.Retire (_, loc) -> BWrites loc
  | Exec.Issue p -> (
    match t.src.peek p with
    | None -> BNone
    | Some req -> (
      match t.model with
      | Model.Custom v -> variant_issue_buffer_footprint t p v req
      | _ -> (
        match req with
        | Thread_intf.Read { cls; loc; _ } ->
          (* a forwarded read consults the buffer: retiring the forwarding
             source changes it into a memory read.  A draining read is only
             enabled once the buffer is empty. *)
          if forwardable t p loc <> None then BReads loc
          else if Model.drains_on t.model cls then BAll
          else BNone
        | Thread_intf.Write { cls; loc; _ } ->
          (* a buffered data write appends the youngest entry; a retire of
             the same location may only exist because of it (enabling), so
             they are conservatively dependent.  Unbuffered writes wait for
             drains. *)
          if Model.buffers_writes t.model && cls = Op.Data then BAppends loc
          else BAll
        | Thread_intf.Rmw _ -> BAll
        | Thread_intf.Fence _ -> BAll)))

let finished t = enabled t = []

let steps t = t.n_steps

let memory t = Array.copy t.mem

let n_recorded t = t.n_ops

let write_memory t ~op_id ~loc ~value =
  t.mem.(loc) <- value;
  t.mem_writer.(loc) <- op_id

let tick t =
  let c = t.clock in
  t.clock <- c + 1;
  c

let do_issue t p =
  match t.src.peek p with
  | None -> invalid_arg "Machine.perform: issue on halted processor"
  | Some req ->
    if not (may_issue t p req) then
      invalid_arg "Machine.perform: issue not enabled";
    let now = tick t in
    (match req with
     | Thread_intf.Read { loc; cls; label; k } ->
       let value, writer =
         if reads_forward t p loc then
           match forwardable t p loc with
           | Some e -> (e.value, e.op_id)
           | None -> assert false
         else (t.mem.(loc), t.mem_writer.(loc))
       in
       let o = record_op t ~proc:p ~loc ~kind:Op.Read ~cls ~value ~label in
       Hashtbl.replace t.rf o.Op.id writer;
       Hashtbl.replace t.commit o.Op.id now;
       k value
     | Thread_intf.Write { loc; value; cls; label; k } ->
       let o = record_op t ~proc:p ~loc ~kind:Op.Write ~cls ~value ~label in
       if Model.buffers_writes t.model && cls = Op.Data then begin
         set_buffer t p (buffer t p @ [ { op_id = o.Op.id; loc; value } ]);
         t.st_buffered <- t.st_buffered + 1;
         t.st_max_buffer <- max t.st_max_buffer (List.length (buffer t p));
         Hashtbl.replace t.issue_time o.Op.id now
       end
       else begin
         write_memory t ~op_id:o.Op.id ~loc ~value;
         Hashtbl.replace t.commit o.Op.id now
       end;
       k ()
     | Thread_intf.Rmw { loc; f; rcls; wcls; label; k } ->
       let old = t.mem.(loc) in
       let r = record_op t ~proc:p ~loc ~kind:Op.Read ~cls:rcls ~value:old ~label in
       Hashtbl.replace t.rf r.Op.id t.mem_writer.(loc);
       Hashtbl.replace t.commit r.Op.id now;
       let nv = f old in
       let w = record_op t ~proc:p ~loc ~kind:Op.Write ~cls:wcls ~value:nv ~label in
       write_memory t ~op_id:w.Op.id ~loc ~value:nv;
       Hashtbl.replace t.commit w.Op.id now;
       k old
     | Thread_intf.Fence { k; label = _ } -> k ())

let do_retire t p loc =
  let rec split acc = function
    | [] -> invalid_arg "Machine.perform: nothing to retire for that location"
    | e :: rest when e.loc = loc -> (e, List.rev_append acc rest)
    | e :: rest -> split (e :: acc) rest
  in
  let e, rest = split [] (buffer t p) in
  set_buffer t p rest;
  let now = tick t in
  write_memory t ~op_id:e.op_id ~loc:e.loc ~value:e.value;
  Hashtbl.replace t.commit e.op_id now;
  t.st_retires <- t.st_retires + 1;
  (match Hashtbl.find_opt t.issue_time e.op_id with
   | Some issued -> t.st_delay <- t.st_delay + (now - issued)
   | None -> ())

let perform t d =
  (match d with
   | Exec.Issue p -> do_issue t p
   | Exec.Retire (p, loc) -> do_retire t p loc);
  t.sched_rev <- d :: t.sched_rev;
  t.n_steps <- t.n_steps + 1

let force_drain t =
  for p = 0 to t.src.n_procs - 1 do
    while buffer t p <> [] do
      match buffer t p with
      | [] -> ()
      | e :: _ -> perform t (Exec.Retire (p, e.loc))
    done
  done

let set_truncated t = t.truncated <- true

let to_execution t =
  let ops = Array.of_list (List.rev t.ops_rev) in
  let by_proc = Array.make t.src.n_procs [] in
  Array.iter (fun (o : Op.t) -> by_proc.(o.proc) <- o :: by_proc.(o.proc)) ops;
  let by_proc = Array.map (fun l -> Array.of_list (List.rev l)) by_proc in
  let rf = Array.make (Array.length ops) (-2) in
  let commit = Array.make (Array.length ops) max_int in
  Array.iter
    (fun (o : Op.t) ->
      (match Hashtbl.find_opt t.rf o.id with
       | Some w -> rf.(o.id) <- w
       | None -> ());
      match Hashtbl.find_opt t.commit o.id with
      | Some c -> commit.(o.id) <- c
      | None -> ())
    ops;
  (* never-retired buffered writes keep commit = max_int, i.e. "after the
     end"; [force_drain] avoids this in normal operation *)
  {
    Exec.model = t.model;
    n_procs = t.src.n_procs;
    n_locs = t.src.n_locs;
    ops;
    by_proc;
    rf;
    commit;
    final_mem = Array.copy t.mem;
    truncated = t.truncated;
    schedule = List.rev t.sched_rev;
  }

let stats t =
  {
    retires = t.st_retires;
    max_buffer = t.st_max_buffer;
    buffered_writes = t.st_buffered;
    delay_total = t.st_delay;
  }

let drive ?(max_steps = 20_000) ?on_op ~model ~sched (src : Thread_intf.source) =
  let t = create ?on_op ~model src in
  let rec loop () =
    if t.n_steps >= max_steps then begin
      set_truncated t;
      force_drain t
    end
    else
      match enabled t with
      | [] -> ()
      | decisions ->
        perform t (Sched.choose sched decisions);
        loop ()
  in
  loop ();
  t

let run ?max_steps ?on_op ~model ~sched src =
  to_execution (drive ?max_steps ?on_op ~model ~sched src)

let run_with_stats ?max_steps ~model ~sched src =
  let t = drive ?max_steps ~model ~sched src in
  (to_execution t, stats t)
