type t = SC | TSO | WO | RCsc | DRF0 | DRF1 | Custom of Variant.t

let all = [ SC; TSO; WO; RCsc; DRF0; DRF1 ]
let weak = [ WO; RCsc; DRF0; DRF1 ]

let name = function
  | SC -> "SC"
  | TSO -> "TSO"
  | WO -> "WO"
  | RCsc -> "RCsc"
  | DRF0 -> "DRF0"
  | DRF1 -> "DRF1"
  | Custom v -> Variant.name v

let of_name s =
  match String.lowercase_ascii s with
  | "sc" -> Some SC
  | "tso" -> Some TSO
  | "wo" -> Some WO
  | "rcsc" -> Some RCsc
  | "drf0" -> Some DRF0
  | "drf1" -> Some DRF1
  | _ -> None

let variant = function
  | SC -> Variant.sc
  | TSO -> Variant.tso
  | WO | DRF0 -> Variant.wo
  | RCsc | DRF1 -> Variant.rcsc
  | Custom v -> v

let of_spec s =
  match of_name s with
  | Some m -> Ok m
  | None -> (
    match Variant.of_spec s with
    | Ok v -> Ok (Custom v)
    | Error e ->
      Error
        (Printf.sprintf
           "unknown model %S (%s)\n\
            named models: SC, TSO, WO, RCsc, DRF0, DRF1\n\
            named variants: %s\n\
            variant spec: %s" s e
           (String.concat ", " (List.map fst Variant.aliases))
           Variant.grammar))

let buffers_writes = function
  | SC -> false
  | TSO | WO | RCsc | DRF0 | DRF1 -> true
  | Custom v -> Variant.has_buffer v

let fifo_buffer = function
  | TSO -> true
  | SC | WO | RCsc | DRF0 | DRF1 -> false
  | Custom v -> Variant.has_buffer v && v.Variant.retire = Variant.Fifo

let distinguishes_release_acquire = function
  | SC | TSO | WO | DRF0 -> false
  | RCsc | DRF1 -> true
  | Custom v -> v.Variant.on_acquire <> v.Variant.on_release

let drains_on m (cls : Op.op_class) =
  match cls with
  | Op.Data -> false
  | Op.Acquire | Op.Release | Op.Plain_sync -> (
    match m with
    | SC -> false (* nothing is ever buffered *)
    | TSO | WO | DRF0 -> true
    | RCsc | DRF1 -> cls = Op.Release
    | Custom v -> Variant.drain_on v cls = Variant.Drain)

let pp ppf m = Format.pp_print_string ppf (name m)
