type depth = Unbounded | Bounded of int

type read_policy = Forward | Stall | Bypass

type retire_order = Fifo | OutOfOrder

type drain = Drain | Nop | Partial

type t = {
  depth : depth;
  read : read_policy;
  retire : retire_order;
  on_acquire : drain;
  on_release : drain;
  on_sync : drain;
  on_fence : drain;
}

let has_buffer v = v.depth <> Bounded 0

let sb =
  {
    depth = Unbounded;
    read = Forward;
    retire = OutOfOrder;
    on_acquire = Drain;
    on_release = Drain;
    on_sync = Drain;
    on_fence = Drain;
  }

let sc = { sb with depth = Bounded 0 }
let tso = { sb with retire = Fifo }
let wo = sb
let rcsc = { sb with on_acquire = Nop; on_sync = Nop }

let drain_on v (cls : Op.op_class) =
  match cls with
  | Op.Data -> Nop
  | Op.Acquire -> v.on_acquire
  | Op.Release -> v.on_release
  | Op.Plain_sync -> v.on_sync

(* Which knob settings keep Theorem 3.5.  Two knobs are load-bearing:
   - [read = Bypass] breaks same-processor coherence: a read can miss the
     processor's own buffered write, so even a race-free (or single
     processor!) execution matches no SC execution — clause 1 fails.
   - [on_release <> Drain] publishes the release while earlier data
     writes are still buffered.  The release/acquire pair still creates
     the so1 edge, so hb1 declares the execution race-free, yet the
     consumer reads stale data — again clause 1 fails.
   Everything else only restricts or reorders buffered data writes, which
   yields behaviours a drain-honouring unbounded out-of-order buffer (WO)
   or RCsc already admits; Theorem 3.5 covers those. *)
let preserves_condition v =
  (not (has_buffer v)) || (v.read <> Bypass && v.on_release = Drain)

(* A fence must not issue over a non-empty buffer.  [Partial] degenerates
   to [Drain] for fences: a fence names no location, so every pending
   write is relevant.  Note [on_fence = Nop] does NOT violate Condition
   3.4 — fences record no operation, so the detector cannot (and per the
   paper need not) see them — it violates the hardware's own fence
   contract, which the campaign checks separately. *)
let honors_fences v = (not (has_buffer v)) || v.on_fence <> Nop

(* The reorderings the buffer machinery can physically produce,
   independent of any particular program.  These are the raw delay kinds
   the static robustness pass ({!Staticcheck.Robust}) maps critical-cycle
   edges onto; per-edge refinements (drain knobs, same-location
   enforcement) live there because they need the accesses' classes and
   abstract addresses. *)
type delay_kind = Delay_wr | Delay_ww | Delay_own_read

let admits v = function
  (* a buffered data write performs after any program-later read issues *)
  | Delay_wr -> has_buffer v
  (* two buffered writes to different locations retire out of order; a
     depth-1 buffer holds one write at a time, so issue order is
     retirement order *)
  | Delay_ww -> (
    has_buffer v && v.retire = OutOfOrder
    && match v.depth with Unbounded -> true | Bounded n -> n >= 2)
  (* a read overtakes the processor's own buffered write to the same
     location — only the bypass defect does this; forwarding returns the
     newest buffered value and stalling waits it out *)
  | Delay_own_read -> has_buffer v && v.read = Bypass

let equal (a : t) (b : t) = a = b

(* -- spec syntax ------------------------------------------------------- *)

let aliases =
  [
    ("sb-fence-nop", { sb with on_fence = Nop });
    ("sb-release-nop", { sb with on_release = Nop });
    ("sb-release-partial", { sb with on_release = Partial });
    ("sb-bypass", { sb with read = Bypass });
    ("sb-stall", { sb with read = Stall });
    ("sb-bounded-2", { sb with depth = Bounded 2 });
  ]

let depth_str = function
  | Unbounded -> "unbounded"
  | Bounded n -> string_of_int n

let read_str = function Forward -> "forward" | Stall -> "stall" | Bypass -> "bypass"
let retire_str = function Fifo -> "fifo" | OutOfOrder -> "ooo"
let drain_str = function Drain -> "drain" | Nop -> "nop" | Partial -> "partial"

let to_spec v =
  let knobs =
    List.filter_map
      (fun (k, cur, dflt) -> if cur = dflt then None else Some (k ^ "=" ^ cur))
      [
        ("depth", depth_str v.depth, depth_str sb.depth);
        ("read", read_str v.read, read_str sb.read);
        ("retire", retire_str v.retire, retire_str sb.retire);
        ("acquire", drain_str v.on_acquire, drain_str sb.on_acquire);
        ("release", drain_str v.on_release, drain_str sb.on_release);
        ("sync", drain_str v.on_sync, drain_str sb.on_sync);
        ("fence", drain_str v.on_fence, drain_str sb.on_fence);
      ]
  in
  match knobs with [] -> "sb" | ks -> "sb:" ^ String.concat "," ks

let name v =
  match List.find_opt (fun (_, w) -> equal v w) aliases with
  | Some (n, _) -> n
  | None -> to_spec v

let grammar =
  "<base>[:<knob>,...] with <base> one of sb|sc|tso|wo|rcsc|drf0|drf1 and \
   <knob> one of depth=<n>|unbounded, read=forward|stall|bypass, \
   retire=fifo|ooo, {acquire|release|sync|fence}=drain|nop|partial"

let base_of_name s =
  match s with
  | "sb" -> Some sb
  | "sc" -> Some sc
  | "tso" -> Some tso
  | "wo" | "drf0" -> Some wo
  | "rcsc" | "drf1" -> Some rcsc
  | _ -> List.assoc_opt s aliases

let ( let* ) = Result.bind

let parse_depth s =
  if s = "unbounded" then Ok Unbounded
  else
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok (Bounded n)
    | _ -> Error (Printf.sprintf "bad depth %S (expected a non-negative int or 'unbounded')" s)

let parse_read = function
  | "forward" -> Ok Forward
  | "stall" -> Ok Stall
  | "bypass" -> Ok Bypass
  | s -> Error (Printf.sprintf "bad read policy %S (forward|stall|bypass)" s)

let parse_retire = function
  | "fifo" -> Ok Fifo
  | "ooo" | "out-of-order" -> Ok OutOfOrder
  | s -> Error (Printf.sprintf "bad retire order %S (fifo|ooo)" s)

let parse_drain knob = function
  | "drain" -> Ok Drain
  | "nop" -> Ok Nop
  | "partial" -> Ok Partial
  | s -> Error (Printf.sprintf "bad %s behaviour %S (drain|nop|partial)" knob s)

let apply_knob v knob value =
  match knob with
  | "depth" ->
    let* d = parse_depth value in
    Ok { v with depth = d }
  | "read" ->
    let* r = parse_read value in
    Ok { v with read = r }
  | "retire" ->
    let* r = parse_retire value in
    Ok { v with retire = r }
  | "acquire" ->
    let* d = parse_drain "acquire" value in
    Ok { v with on_acquire = d }
  | "release" ->
    let* d = parse_drain "release" value in
    Ok { v with on_release = d }
  | "sync" ->
    let* d = parse_drain "sync" value in
    Ok { v with on_sync = d }
  | "fence" ->
    let* d = parse_drain "fence" value in
    Ok { v with on_fence = d }
  | _ ->
    Error
      (Printf.sprintf "unknown knob %S (depth|read|retire|acquire|release|sync|fence)"
         knob)

let of_spec s =
  let s = String.lowercase_ascii (String.trim s) in
  let base, knobs =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  match base_of_name base with
  | None -> Error (Printf.sprintf "unknown base model %S" base)
  | Some v ->
    let kvs = if knobs = "" then [] else String.split_on_char ',' knobs in
    List.fold_left
      (fun acc kv ->
        let* v = acc in
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "bad knob %S (expected name=value)" kv)
        | Some i ->
          apply_knob v
            (String.sub kv 0 i)
            (String.sub kv (i + 1) (String.length kv - i - 1)))
      (Ok v) kvs

let pp ppf v = Format.pp_print_string ppf (name v)
