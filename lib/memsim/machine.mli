(** The operation-level multiprocessor: shared memory, one store buffer per
    processor, and the per-model issue rules of {!Model}.

    Semantics in brief:
    - An {e issue} performs the processor's next request.  Reads take
      effect immediately, forwarding from the processor's own newest
      buffered write to the same location when one is pending.  Data
      writes enter the store buffer on buffering models (all but SC) and
      go straight to memory on SC.  Synchronization operations and
      read-modify-writes always take effect atomically at memory on issue
      (synchronization is sequentially consistent on every model), subject
      to the model's drain rule ({!Model.drains_on}) and to per-location
      coherence (a write may not bypass a pending same-location write of
      its own processor).
    - A {e retire} moves one buffered write to memory.  Retirement across
      different locations happens in any order the scheduler picks — this
      out-of-order completion is precisely what makes the weak executions
      of the paper's Figures 1a and 2b possible — while writes to the same
      location retire in program order.

    Named models go through the per-model rules above; [Model.Custom]
    variants go through knob-driven rules ({!Variant}) that generalize
    them: bounded buffer depth stalls data writes until a slot frees,
    [Stall] reads wait for conflicting retires and [Bypass] reads skip
    the forwarding network entirely, [Partial] drains wait only for
    same-location writes, and [fence=nop] lets fences issue over a full
    buffer.  The canonical lattice points must behave exactly like their
    named models — the qcheck differential suite enforces this — and
    {!footprint}/{!buffer_footprint} stay conservative for every knob so
    partial-order-reduced exploration remains sound.

    The step-wise API ([enabled]/[perform]) is what the SC-interleaving
    enumerator drives; [run] wraps it with a scheduler. *)

type t

val create : ?on_op:(Op.t -> unit) -> model:Model.t -> Thread_intf.source -> t
(** [on_op] is invoked synchronously for every memory operation the
    moment it is recorded — the hook an on-the-fly detector attaches to
    (§5).  It must not call back into the machine. *)

val enabled : t -> Exec.decision list
(** Decisions currently permitted; empty iff the run is complete. *)

val footprint : t -> Exec.decision -> (Op.loc * Op.kind) list
(** The shared-memory accesses the decision would perform {e at memory},
    for the dependence relation of a partial-order-reduced explorer.  A
    retire writes its location; an issue reads or writes the locations of
    the request it performs — except that a data write headed for the
    store buffer touches memory only at its retire (empty footprint now),
    and a read forwarded from the processor's own buffer never reaches
    memory at all.  Fences have empty footprints.  Decisions of different
    processors with non-conflicting footprints commute: performing them
    in either order yields the same memory, buffers, reads-from and
    per-processor operation sequences, because enabledness and buffer
    state are per-processor and values flow only through the locations
    listed here.

    Within one processor the memory footprint is not the whole story:
    issue and retire decisions of the {e same} processor can interact
    through its private store buffer, with no memory access at all —
    see {!buffer_footprint}. *)

type buffer_footprint =
  | BNone  (** no interaction with the processor's own buffer *)
  | BReads of Op.loc
      (** reads the newest buffered write to this location (forwarding) *)
  | BAppends of Op.loc
      (** appends a buffered write to this location (buffered store) *)
  | BWrites of Op.loc
      (** removes the oldest buffered write to this location (retire) *)
  | BAll
      (** enabled only while the buffer is (or becomes) empty: fences,
          draining reads, unbuffered writes, read-modify-writes *)

val buffer_footprint : t -> Exec.decision -> buffer_footprint
(** The decision's interaction with its own processor's store buffer,
    for the {e same-processor} dependence of a partial-order-reduced
    explorer.  A processor is two scheduling agents — the front end that
    issues and the buffer that retires — and two of its decisions from
    {e different} agents commute unless their buffer footprints conflict
    ([BReads l] or [BAppends l] with [BWrites l], or [BAll] with any
    [BWrites]): a retire removes the oldest entry for its location, so
    it changes a later forwarded read of that location into a memory
    read, and a retire of location [l] may only be enabled because an
    append to [l] came first. *)

val perform : t -> Exec.decision -> unit
(** @raise Invalid_argument if the decision is not enabled. *)

val finished : t -> bool

val steps : t -> int

val memory : t -> Op.value array
(** Snapshot of shared memory (buffered writes not yet included). *)

val n_recorded : t -> int
(** Operations recorded so far (issue order). *)

val force_drain : t -> unit
(** Retire every buffered write (used when a run hits its step budget, so
    the final memory state is well defined). *)

val set_truncated : t -> unit

val to_execution : t -> Exec.t
(** Snapshot of the run so far.  Buffered writes that never retired are
    given commit timestamps after all retired operations. *)

type stats = {
  retires : int;          (** buffered writes that reached memory *)
  max_buffer : int;       (** peak store-buffer occupancy over all processors *)
  buffered_writes : int;  (** data writes that went through a buffer *)
  delay_total : int;      (** sum over buffered writes of commit - issue time *)
}

val stats : t -> stats

val run :
  ?max_steps:int ->
  ?on_op:(Op.t -> unit) ->
  model:Model.t ->
  sched:Sched.t ->
  Thread_intf.source ->
  Exec.t
(** Drive the machine with [sched] until no decision is enabled or
    [max_steps] (default 20_000) decisions have been performed; in the
    latter case the execution is marked truncated and the buffers are
    drained. *)

val run_with_stats :
  ?max_steps:int ->
  model:Model.t ->
  sched:Sched.t ->
  Thread_intf.source ->
  Exec.t * stats
