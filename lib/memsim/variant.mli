(** The hardware-variant lattice: a memory model as first-class
    configuration of the store-buffer machine rather than a fixed enum.

    Each knob parameterizes one axis along which plausible store-buffer
    hardware differs:

    - {b depth}: how many data writes the buffer holds.  [Bounded 0]
      means no buffering at all (SC); [Bounded n] stalls further data
      writes until a retire frees a slot; [Unbounded] never stalls.
    - {b read}: what a read does when the processor has a pending write
      to the same location.  [Forward] returns the newest buffered value
      (the conventional bypass network); [Stall] refuses to issue until
      the conflicting writes retire, then reads memory; [Bypass] reads
      memory {e ignoring} the buffer — deliberately incoherent hardware.
    - {b retire}: [Fifo] retires strictly oldest-first (TSO); since
      same-location writes always retire in order, [OutOfOrder] only
      reorders across locations (WO/RCsc).
    - {b on_acquire}/{b on_release}/{b on_sync}/{b on_fence}: whether an
      operation of that class waits for the buffer.  [Drain] waits until
      empty, [Nop] never waits, [Partial] waits only for pending writes
      to the operation's own location (for fences, which name no
      location, [Partial] degenerates to [Drain]).

    The named models are canonical points: SC = [depth=0], TSO =
    [retire=fifo], WO = everything drains out-of-order, RCsc = only
    releases (and fences) drain.  The deliberately broken points — e.g.
    [sb-fence-nop], or [release=nop], which lets a release publish its
    flag while the data it guards is still buffered — exist so the test
    campaign can demonstrate which knobs Theorem 3.5 actually needs. *)

type depth = Unbounded | Bounded of int
(** [Bounded 0] disables buffering entirely. *)

type read_policy = Forward | Stall | Bypass

type retire_order = Fifo | OutOfOrder

type drain = Drain | Nop | Partial

type t = {
  depth : depth;
  read : read_policy;
  retire : retire_order;
  on_acquire : drain;
  on_release : drain;
  on_sync : drain;
  on_fence : drain;
}

val has_buffer : t -> bool
(** False iff [depth = Bounded 0]. *)

val sc : t
val tso : t
val wo : t
val rcsc : t

val sb : t
(** The generic store-buffer point: unbounded, forwarding, out-of-order,
    every sync class and fence drains.  Equal to {!wo}. *)

val drain_on : t -> Op.op_class -> drain
(** [Data] operations never drain ([Nop]); sync classes map to their
    knob.  Fences are not an {!Op.op_class} — use [v.on_fence]. *)

val preserves_condition : t -> bool
(** Whether the variant satisfies Condition 3.4 by construction: true
    iff it does not buffer at all, or reads are coherent ([read <>
    Bypass]) and releases drain ([on_release = Drain]).  These are
    exactly the knobs Theorem 3.5's proof leans on; see DESIGN.md. *)

val honors_fences : t -> bool
(** Whether a fence actually orders buffered writes ([on_fence <> Nop]
    on buffering variants).  A fence-ignoring variant does {e not}
    violate Condition 3.4 — fences record no operation, so they are
    invisible to the detector — it violates the hardware fence contract,
    which the variants campaign checks separately. *)

type delay_kind =
  | Delay_wr  (** a buffered data write performs after a later read *)
  | Delay_ww
      (** two buffered data writes to different locations retire out of
          issue order *)
  | Delay_own_read
      (** a read overtakes the processor's own pending same-location
          write (the [Bypass] coherence defect) *)

val admits : t -> delay_kind -> bool
(** Whether the variant's knobs can physically produce the delay,
    independent of any program: [Delay_wr] needs a buffer at all,
    [Delay_ww] additionally needs [retire = OutOfOrder] and room for two
    writes, [Delay_own_read] needs [read = Bypass].  The static
    robustness pass ({!Staticcheck.Robust}) layers per-edge drain-knob
    and same-location refinements on top of these. *)

val equal : t -> t -> bool

val aliases : (string * t) list
(** Named off-lattice points for the campaign: [sb-fence-nop],
    [sb-release-nop], [sb-release-partial], [sb-bypass], [sb-stall],
    [sb-bounded-2]. *)

val to_spec : t -> string
(** Canonical spec string ([sb] plus the knobs differing from it);
    round-trips through {!of_spec}. *)

val name : t -> string
(** The alias name when the variant is a named point, else {!to_spec}. *)

val grammar : string
(** One-line description of the spec grammar, for error messages. *)

val of_spec : string -> (t, string) result
(** Parse [<base>[:<knob>,...]], e.g. ["sb:depth=2,fence=nop"].  Bases
    are [sb|sc|tso|wo|rcsc|drf0|drf1] and the alias names; knobs are
    [depth=<n>|unbounded], [read=forward|stall|bypass],
    [retire=fifo|ooo], and [acquire]/[release]/[sync]/[fence][=drain|nop|partial]. *)

val pp : Format.formatter -> t -> unit
