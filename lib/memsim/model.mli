(** The five memory consistency models of the paper (§2.2).

    The simulator realizes weakness as delayed, out-of-order retirement of
    buffered data writes; synchronization operations always take effect
    atomically at issue (they are sequentially consistent among themselves,
    as WO and RCsc require).  A model is therefore characterized by which
    synchronization classes force the issuing processor's store buffer to
    drain first:

    - {b SC}: no buffering at all; every operation performs at issue.
    - {b TSO} (total store order; not one of the paper's models, included
      as a comparator): the store buffer drains strictly in FIFO order,
      so a processor's writes become visible in program order.  Figure
      1a's new-y-old-x anomaly is impossible under TSO while Dekker's
      (0,0) outcome remains possible — it sits strictly between SC and
      WO.
    - {b WO} (weak ordering, Dubois–Scheurich–Briggs): all memory operations
      before a sync must complete before it issues — every sync op drains.
    - {b RCsc} (release consistency with SC syncs, Gharachorloo et al.):
      only {e releases} wait for previous operations; acquires and plain
      sync ops issue with writes still pending.
    - {b DRF0} (Adve–Hill): does not distinguish acquire from release, so
      its canonical implementation behaves like WO.
    - {b DRF1}: exploits the release/acquire distinction, so its canonical
      implementation behaves like RCsc.

    Executions the simulator produces are always allowed by the respective
    model; the simulator does not claim to produce {e every} allowed
    execution (no finite tester can).  Every implementation here obeys
    Condition 3.4 — not by a special mechanism, but inherently, which is
    exactly Theorem 3.5; the test suite verifies this on random programs,
    and exhaustively over whole envelopes for litmus-sized ones.

    Beyond the named models, [Custom] makes the model first-class
    configuration: a {!Variant.t} record of store-buffer knobs (depth,
    read handling, retirement order, per-class drain behaviour).  The
    named models are canonical points of that lattice ({!variant}), and
    the [racedet variants] campaign tests, per lattice point, whether
    Condition 3.4 survives — including deliberately broken hardware such
    as [sb:fence=nop] that no named model describes. *)

type t = SC | TSO | WO | RCsc | DRF0 | DRF1 | Custom of Variant.t

val all : t list
(** The named models only (customs are a lattice, not a list). *)

val weak : t list
(** The paper's four weak models (excludes SC and the TSO comparator). *)

val name : t -> string
(** For [Custom] variants this is the alias name or canonical spec
    string — parseable back via {!of_spec}, so it round-trips through
    traces. *)

val of_name : string -> t option
(** Named models only; use {!of_spec} to also accept variant specs. *)

val variant : t -> Variant.t
(** The lattice point a named model canonically occupies (identity on
    [Custom]).  [Machine] runs [Custom (variant m)] through the
    knob-driven issue rules and [m] itself through the original
    per-model rules; the two are behaviour-identical — the qcheck
    differential suite holds them to that. *)

val of_spec : string -> (t, string) result
(** Accepts the named models ({!of_name}) and variant specs / aliases
    ({!Variant.of_spec}, wrapped in [Custom]).  The error message lists
    the valid names and the spec grammar. *)

val buffers_writes : t -> bool
(** False only for SC. *)

val fifo_buffer : t -> bool
(** True only for TSO: buffered writes must retire oldest-first. *)

val drains_on : t -> Op.op_class -> bool
(** [drains_on m cls] is true when an operation of class [cls] may issue
    only after the issuing processor's store buffer is empty.  [Data]
    operations never drain; what the sync classes do depends on the
    model as described above. *)

val distinguishes_release_acquire : t -> bool

val pp : Format.formatter -> t -> unit
